//! Deterministic fault injection for the GPU→host detection pipeline.
//!
//! A [`FaultPlan`] describes a set of faults to inject into the threaded
//! detection pipeline — stalled consumers, worker panics, dropped and
//! corrupted records — so that the degradation paths (partial results,
//! lost-record accounting, bounded-stall backpressure) can be exercised
//! reproducibly. Every decision is a pure function of the plan's seed and
//! the record's position in its queue's stream, so a plan replays
//! identically across runs: the simulator emits records in a
//! deterministic order, therefore the same records are dropped, the same
//! bytes are corrupted and the same worker panics at the same event.
//!
//! The plan lives in this crate because it speaks the queue's vocabulary
//! (queue indices, record sequence numbers); the runtime session threads
//! it from `BarracudaConfig` through the producer sink and the consumer
//! workers.

/// SplitMix64 — the tiny mixing function used to derive per-record fault
/// decisions from `(seed, stream, sequence)` without carrying RNG state
/// across threads.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A slow-consumer fault: the selected workers pause periodically, which
/// builds queue backpressure without losing records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsumerStall {
    /// Stall once every this many processed records (0 disables).
    pub every_records: u64,
    /// Length of each stall, in spin-yield iterations.
    pub yields: u32,
}

/// A worker-crash fault: the selected worker panics after processing a
/// fixed number of records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker (taken modulo the worker count at run time).
    pub worker: usize,
    /// Panic after this many processed records.
    pub after_records: u64,
}

/// A deterministic, seeded fault-injection plan for one detection run.
///
/// The default plan injects nothing; builder-style methods switch on
/// individual fault classes. Probabilities are evaluated per record from
/// the seed and the record's `(queue, sequence)` coordinates, so two runs
/// of the same workload with the same plan fault identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Slow-consumer injection, applied to every worker.
    pub consumer_stall: Option<ConsumerStall>,
    /// Crash injection for one worker.
    pub worker_panic: Option<WorkerPanic>,
    /// Probability that a produced record is silently dropped before it
    /// reaches its queue.
    pub drop_rate: f64,
    /// Probability that a produced record has its kind byte corrupted
    /// before it reaches its queue.
    pub corrupt_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            consumer_stall: None,
            worker_panic: None,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (identical to `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// A stall-only plan: consumers pause periodically but no records are
    /// lost or damaged, so race verdicts must be unaffected. The stall
    /// cadence and length are derived from the seed so different seeds
    /// exercise different interleavings.
    pub fn stalls_only(seed: u64) -> Self {
        let h = mix(seed);
        FaultPlan {
            seed,
            consumer_stall: Some(ConsumerStall {
                every_records: 16 + (h % 49),          // every 16..64 records
                yields: 64 + ((h >> 32) % 448) as u32, // stall 64..512 yields
            }),
            ..Self::default()
        }
    }

    /// Sets the consumer-stall fault.
    #[must_use]
    pub fn with_consumer_stall(mut self, stall: ConsumerStall) -> Self {
        self.consumer_stall = Some(stall);
        self
    }

    /// Sets the worker-panic fault.
    #[must_use]
    pub fn with_worker_panic(mut self, panic: WorkerPanic) -> Self {
        self.worker_panic = Some(panic);
        self
    }

    /// Sets the record-drop probability.
    #[must_use]
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Sets the record-corruption probability.
    #[must_use]
    pub fn with_corrupt_rate(mut self, p: f64) -> Self {
        self.corrupt_rate = p;
        self
    }

    /// True when the plan can lose or damage records (verdicts may then
    /// legitimately differ from a fault-free run).
    pub fn is_lossy(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0 || self.worker_panic.is_some()
    }

    /// Uniform `[0, 1)` draw for record `seq` of stream `stream` under
    /// fault class `class`.
    fn draw(&self, class: u64, stream: u64, seq: u64) -> f64 {
        let z = mix(self.seed ^ mix(class) ^ mix(stream).rotate_left(17) ^ seq);
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should record `seq` of queue `queue` be dropped on the producer
    /// side?
    pub fn should_drop(&self, queue: u64, seq: u64) -> bool {
        self.drop_rate > 0.0 && self.draw(1, queue, seq) < self.drop_rate
    }

    /// Should record `seq` of queue `queue` be corrupted on the producer
    /// side? Returns the byte to splat over the record's kind field.
    pub fn corrupt_kind(&self, queue: u64, seq: u64) -> Option<u8> {
        if self.corrupt_rate > 0.0 && self.draw(2, queue, seq) < self.corrupt_rate {
            // Any value ≥ 14 fails to decode; keep it obviously bogus.
            Some(0xC0 | (mix(self.seed ^ seq) as u8 & 0x3F))
        } else {
            None
        }
    }

    /// Number of spin-yield iterations worker `worker` must stall for
    /// after processing its `processed`-th record (0 = no stall now).
    pub fn consumer_stall_yields(&self, worker: usize, processed: u64) -> u32 {
        match self.consumer_stall {
            Some(s) if s.every_records > 0 && processed > 0 => {
                // Offset the phase per worker so stalls do not align.
                let phase = mix(self.seed ^ worker as u64) % s.every_records;
                if (processed + phase).is_multiple_of(s.every_records) {
                    s.yields
                } else {
                    0
                }
            }
            _ => 0,
        }
    }

    /// If worker `worker` (of `nworkers`) must panic, the record count at
    /// which it does.
    pub fn panic_after(&self, worker: usize, nworkers: usize) -> Option<u64> {
        self.worker_panic
            .filter(|p| nworkers > 0 && p.worker % nworkers == worker)
            .map(|p| p.after_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_lossy());
        for seq in 0..1000 {
            assert!(!p.should_drop(0, seq));
            assert!(p.corrupt_kind(0, seq).is_none());
            assert_eq!(p.consumer_stall_yields(0, seq), 0);
        }
        assert_eq!(p.panic_after(0, 4), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan {
            seed: 42,
            drop_rate: 0.3,
            corrupt_rate: 0.2,
            ..FaultPlan::none()
        };
        let b = a.clone();
        for q in 0..4u64 {
            for seq in 0..500 {
                assert_eq!(a.should_drop(q, seq), b.should_drop(q, seq));
                assert_eq!(a.corrupt_kind(q, seq), b.corrupt_kind(q, seq));
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let p = FaultPlan {
            seed: 7,
            drop_rate: 0.25,
            ..FaultPlan::none()
        };
        let n = 20_000;
        let dropped = (0..n).filter(|&s| p.should_drop(3, s)).count();
        let frac = dropped as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "observed drop fraction {frac}");
    }

    #[test]
    fn seeds_decorrelate_decisions() {
        let a = FaultPlan {
            seed: 1,
            drop_rate: 0.5,
            ..FaultPlan::none()
        };
        let b = FaultPlan {
            seed: 2,
            drop_rate: 0.5,
            ..FaultPlan::none()
        };
        let differing = (0..1000)
            .filter(|&s| a.should_drop(0, s) != b.should_drop(0, s))
            .count();
        assert!(
            differing > 200,
            "seeds 1 and 2 agree too often ({differing} differ)"
        );
    }

    #[test]
    fn stalls_only_plans_stall_but_never_lose() {
        for seed in 0..16 {
            let p = FaultPlan::stalls_only(seed);
            assert!(!p.is_lossy());
            let stall = p.consumer_stall.expect("stall plan has a stall");
            assert!(stall.every_records >= 16 && stall.every_records < 65);
            assert!(stall.yields >= 64 && stall.yields < 512);
            let stalled: u32 = (1..=1000).map(|n| p.consumer_stall_yields(0, n)).sum();
            assert!(stalled > 0, "seed {seed} never stalls in 1000 records");
        }
    }

    #[test]
    fn corrupt_kind_is_undecodable() {
        let p = FaultPlan {
            seed: 3,
            corrupt_rate: 1.0,
            ..FaultPlan::none()
        };
        for seq in 0..100 {
            let k = p.corrupt_kind(0, seq).expect("rate 1.0 always corrupts");
            assert!(k >= 14, "corrupted kind {k} would still decode");
        }
    }

    #[test]
    fn panic_targets_one_worker_by_modulo() {
        let p = FaultPlan::none().with_worker_panic(WorkerPanic {
            worker: 5,
            after_records: 10,
        });
        assert_eq!(p.panic_after(1, 4), Some(10)); // 5 % 4 == 1
        assert_eq!(p.panic_after(0, 4), None);
        assert_eq!(p.panic_after(5, 8), Some(10));
        assert_eq!(p.panic_after(4, 8), None);
    }
}
