//! The persistent detection engine.
//!
//! The paper's tool attaches to a CUDA *process*, not to a single kernel:
//! detection state lives as long as the device does. [`Engine`] is that
//! model. It owns
//!
//! * the simulated GPU and its memory,
//! * an [`EngineCore`] whose global shadow memory, synchronization-location
//!   map and clocks persist across kernel launches,
//! * a pool of long-lived detector worker threads (threaded mode) that are
//!   reused by every launch instead of being respawned,
//! * a cache of instrumented modules keyed by module identity, so checking
//!   the same kernel repeatedly pays for one rewrite,
//! * the device-lifetime host trace ([`HostOp`] records) and per-launch
//!   [`LaunchSummary`] telemetry.
//!
//! The CUDA-style host API (streams, `launch_async`, `memcpy_h2d`/`d2h`,
//! synchronization) lives in the [`device`](crate::StreamId) layer; the
//! one-shot [`Barracuda`](crate::Barracuda) session is a thin facade over
//! an engine's default stream.

use crate::analysis::{Analysis, AnalysisStats, PipelineStats, StreamTelemetry, WorkerTelemetry};
use crate::config::{BarracudaConfig, DetectionMode};
use crate::device::{StreamId, StreamState};
use crate::session::KernelRun;
use crate::sink::{drain_queue, panic_message, PipelineSink, WorkerOutcome};
use crate::Error;
use barracuda_core::{Detector, Diagnostic, EngineCore, PathStats, RaceReport, Worker};
use barracuda_instrument::{instrument_module, InstrumentStats};
use barracuda_ptx::ast::Module;
use barracuda_simt::{
    Gpu, GroupLaunch, LaunchStats, LoadedKernel, ParamValue, VecSink, MAX_GROUP_SLOTS,
};
use barracuda_trace::{CancelToken, FaultPlan, GridDims, HostOp, QueueSet, SyncOrder};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Per-launch tallies a pipeline run hands back for [`AnalysisStats`]:
/// `(launch, records, events, format census, shadow path counters,
/// pipeline telemetry)`.
type LaunchTallies = (LaunchStats, u64, u64, [u64; 4], PathStats, PipelineStats);

/// Per-launch summary of a device-lifetime run (the `--stats-json`
/// `launches` array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSummary {
    /// Launch epoch assigned by the engine (launch order).
    pub epoch: u32,
    /// Stream the launch ran on.
    pub stream: u32,
    /// Kernel entry name.
    pub kernel: String,
    /// Distinct racing locations this launch exposed.
    pub races: usize,
    /// Device log records produced.
    pub records: u64,
    /// Events processed by the detector.
    pub events: u64,
}

/// A deferred launch awaiting its co-resident group
/// ([`BarracudaConfig::interleave_kernels`]): everything needed to
/// execute and detect it at the next flush. Its epoch, happens-before
/// edges and detector were fixed at registration time — deferral changes
/// *when* the kernel runs, never what it is ordered against.
struct PendingLaunch {
    stream: StreamId,
    epoch: u32,
    /// Detector frozen at registration; its registry snapshot is
    /// refreshed at flush time so it can classify races against launches
    /// registered after it.
    det: Detector,
    lk: LoadedKernel,
    dims: GridDims,
    params: Vec<ParamValue>,
    /// Group index of the same-stream predecessor, when that predecessor
    /// is still pending (same group ⇒ the scheduler orders them).
    dep: Option<usize>,
    /// Index of the launch's placeholder [`LaunchSummary`], filled in at
    /// flush time.
    summary_index: usize,
}

impl std::fmt::Debug for PendingLaunch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingLaunch")
            .field("stream", &self.stream)
            .field("epoch", &self.epoch)
            .field("dims", &self.dims)
            .field("dep", &self.dep)
            .finish_non_exhaustive()
    }
}

/// Per-slot tallies of one flushed co-resident group, plus the group-wide
/// census/path/pipeline aggregates.
#[derive(Debug, Default)]
struct GroupTallies {
    stats: Vec<LaunchStats>,
    records: Vec<u64>,
    events: Vec<u64>,
    dropped: Vec<u64>,
    census: [u64; 4],
    paths: PathStats,
    pipeline: PipelineStats,
}

/// Everything one flush produced: the drained races and diagnostics plus
/// the group tallies (slot-indexed in flush order).
#[derive(Debug, Default)]
struct FlushOutcome {
    races: Vec<RaceReport>,
    diagnostics: Vec<Diagnostic>,
    tallies: GroupTallies,
    detection_time: std::time::Duration,
    shadow_bytes: u64,
}

/// One instrumented module, cached so repeated checks of the same source
/// reuse the rewrite and the per-kernel load (CFG construction, decode).
#[derive(Debug)]
struct CachedModule {
    module: Arc<Module>,
    stats: InstrumentStats,
    kernels: HashMap<String, LoadedKernel>,
}

/// Work order for one pool worker: drain your queue for this launch (or
/// co-resident launch group — one detector per group slot, records
/// dispatched by their [`Record::slot`](barracuda_trace::Record::slot)
/// byte; eager launches pass a single detector).
struct LaunchCmd {
    dets: Vec<Arc<Detector>>,
    plan: Option<Arc<FaultPlan>>,
    order: Arc<SyncOrder>,
    done: Arc<AtomicBool>,
    /// Page-hash routing for this launch (see
    /// [`BarracudaConfig::sharded_routing`]).
    sharded: bool,
}

/// Long-lived detector workers, one per queue, reused across launches.
/// A worker that panics (injected or real) fails only the launch it was
/// serving: the panic is caught in its command loop and the thread stays
/// available for the next launch.
#[derive(Debug)]
struct WorkerPool {
    queues: Arc<QueueSet>,
    txs: Vec<mpsc::Sender<LaunchCmd>>,
    rx: mpsc::Receiver<(usize, WorkerOutcome)>,
    handles: Vec<std::thread::JoinHandle<()>>,
    // Cumulative queue counters as of the end of the previous launch;
    // QueueSet counters are monotonic, so per-launch figures are deltas.
    committed: u64,
    dropped: u64,
    stalls: u64,
}

impl WorkerPool {
    fn spawn(nqueues: usize, capacity: usize) -> Self {
        let queues = Arc::new(QueueSet::new(nqueues, capacity));
        let (out_tx, rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(nqueues);
        let mut handles = Vec::with_capacity(nqueues);
        for qi in 0..nqueues {
            let (tx, cmd_rx) = mpsc::channel::<LaunchCmd>();
            let out = out_tx.clone();
            let q = Arc::clone(&queues);
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        drain_queue(
                            qi,
                            nqueues,
                            &q,
                            &cmd.dets,
                            cmd.plan.as_deref(),
                            &cmd.done,
                            &cmd.order,
                            cmd.sharded,
                        )
                    }));
                    let outcome = match r {
                        Ok(t) => WorkerOutcome::Finished(t),
                        Err(payload) => {
                            // A dead worker must not wedge the sync order
                            // for the survivors of this launch.
                            cmd.order.mark_dead(qi);
                            WorkerOutcome::Panicked(panic_message(payload.as_ref()))
                        }
                    };
                    if out.send((qi, outcome)).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        WorkerPool {
            queues,
            txs,
            rx,
            handles,
            committed: 0,
            dropped: 0,
            stalls: 0,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the command channels ends each worker's loop.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent, device-lifetime detection engine (see the module docs).
#[derive(Debug)]
pub struct Engine {
    pub(crate) config: BarracudaConfig,
    pub(crate) gpu: Gpu,
    pub(crate) core: EngineCore,
    pub(crate) streams: Vec<StreamState>,
    pub(crate) host_trace: Vec<HostOp>,
    pub(crate) launches: Vec<LaunchSummary>,
    module_cache: HashMap<u64, CachedModule>,
    cache_hits: u64,
    pool: Option<WorkerPool>,
    /// Cumulative per-stream pipeline telemetry, indexed by stream id.
    stream_stats: Vec<StreamTelemetry>,
    /// Deferred launches awaiting their co-resident group
    /// ([`BarracudaConfig::interleave_kernels`]); empty in eager mode.
    pending: Vec<PendingLaunch>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Self::with_config(BarracudaConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: BarracudaConfig) -> Self {
        let mut core = EngineCore::new();
        core.set_fast_paths(config.detector_fast_paths);
        let mut gpu = Gpu::new(config.gpu.clone());
        // One token spans the whole pipeline: the simulator polls it at
        // scheduler slice boundaries, detector workers between records.
        gpu.set_cancel_token(Some(core.cancel_token()));
        Engine {
            config,
            gpu,
            core,
            streams: vec![StreamState::default()], // the default stream
            host_trace: Vec::new(),
            launches: Vec::new(),
            module_cache: HashMap::new(),
            cache_hits: 0,
            pool: None,
            stream_stats: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// A clone of the engine's cancel token. Cancelling it makes the
    /// launch in flight (if any) stop cooperatively — the simulator at
    /// its next scheduler slice, the detector workers at their next
    /// record — and fail with [`Error::Sim`] /
    /// [`SimError::Cancelled`](barracuda_simt::SimError::Cancelled). The
    /// engine remains usable: each launch entry point re-arms the token,
    /// so a cancellation that lands after its launch completed is
    /// harmless.
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel_token()
    }

    /// Replaces the fault-injection plan for subsequent launches (chaos
    /// testing; `None` restores lossless operation).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.config.fault_plan = plan;
    }

    /// Sets the step budget for subsequent launches (per-request
    /// deadlines; `u64::MAX` disables).
    pub fn set_max_steps(&mut self, max_steps: u64) {
        self.config.gpu.max_steps = max_steps;
        self.gpu.set_max_steps(max_steps);
    }

    /// The simulated device, for allocating and initializing buffers.
    /// Raw device access bypasses detection; use
    /// [`memcpy_h2d`](Engine::memcpy_h2d) /
    /// [`memcpy_d2h`](Engine::memcpy_d2h) for checked host transfers.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// The simulated device (read-only: result readback).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The active configuration.
    pub fn config(&self) -> &BarracudaConfig {
        &self.config
    }

    /// Per-launch summaries, in launch order.
    pub fn launches(&self) -> &[LaunchSummary] {
        &self.launches
    }

    /// The device-lifetime host trace (launches, memcpys, syncs).
    pub fn host_trace(&self) -> &[HostOp] {
        &self.host_trace
    }

    /// Distinct modules instrumented so far.
    pub fn module_cache_len(&self) -> usize {
        self.module_cache.len()
    }

    /// Checks that reused a cached instrumentation instead of rewriting.
    pub fn module_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Runs the kernel natively (no instrumentation, no detection) and
    /// returns the launch statistics — the baseline for overhead
    /// measurements (Fig. 10). Native runs are invisible to the detector:
    /// they create no happens-before edges and no shadow state.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure.
    pub fn run_native(&mut self, run: &KernelRun<'_>) -> Result<LaunchStats, Error> {
        self.core.cancel_token().reset();
        let module = barracuda_ptx::parse(run.source)?;
        Ok(self.gpu.launch(&module, run.kernel, run.dims, run.params)?)
    }

    /// Instruments (or reuses the cached instrumentation of) the kernel,
    /// runs it on the default stream, and performs race detection. The
    /// default stream orders its launches, so repeated `check` calls on
    /// one engine never race with each other — but their shadow state
    /// persists, and a later launch on another stream can still race with
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure (including barrier
    /// divergence hangs and timeouts).
    pub fn check(&mut self, run: &KernelRun<'_>) -> Result<Analysis, Error> {
        let analysis = self.launch_async(StreamId::DEFAULT, run)?;
        self.flush_for_check(analysis)
    }

    /// Like [`Engine::check`] for an already-parsed module. The cache key
    /// is the module's printed PTX (its identity), so an AST checked twice
    /// is still instrumented once.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on simulation failure.
    pub fn check_module(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        let key = hash_key(1, &barracuda_ptx::printer::print_module(module));
        let (lk, istats) =
            self.cached_kernel(key, |opts| Ok(instrument_module(module, opts)), kernel)?;
        let analysis = self.run_launch(StreamId::DEFAULT, kernel, &lk, istats, dims, params)?;
        self.flush_for_check(analysis)
    }

    /// Warp-size portability sweep: checks the kernel under several
    /// simulated warp sizes and returns each analysis.
    ///
    /// The paper notes that portable CUDA code should not assume a warp
    /// size and that BARRACUDA "could simulate the behavior of
    /// smaller/larger warps to find additional latent bugs" (§3.1) — this
    /// method implements that extension. Warp-synchronous code that is
    /// race-free at the hardware warp size often races at a smaller one,
    /// because lockstep ordering no longer covers the accesses. The
    /// module is instrumented once for the whole sweep.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or parse failure.
    pub fn check_warp_sizes(
        &mut self,
        run: &KernelRun<'_>,
        warp_sizes: &[u32],
    ) -> Result<Vec<(u32, Analysis)>, Error> {
        warp_sizes
            .iter()
            .map(|&ws| {
                let dims = GridDims::with_warp_size(run.dims.grid, run.dims.block, ws);
                let analysis = self.check(&KernelRun { dims, ..*run })?;
                Ok((ws, analysis))
            })
            .collect()
    }

    /// Resolves `kernel` in the module cached under `key`, instrumenting
    /// via `build` on a miss. Returns the loaded kernel (cheap clone) and
    /// the instrumentation stats.
    pub(crate) fn cached_kernel(
        &mut self,
        key: u64,
        build: impl FnOnce(
            &barracuda_instrument::InstrumentOptions,
        ) -> Result<(Module, InstrumentStats), Error>,
        kernel: &str,
    ) -> Result<(LoadedKernel, InstrumentStats), Error> {
        match self.module_cache.entry(key) {
            Entry::Occupied(_) => self.cache_hits += 1,
            Entry::Vacant(v) => {
                let (module, stats) = build(&self.config.instrument)?;
                v.insert(CachedModule {
                    module: Arc::new(module),
                    stats,
                    kernels: HashMap::new(),
                });
            }
        }
        let cm = self.module_cache.get_mut(&key).expect("cached above");
        let stats = cm.stats;
        let lk = match cm.kernels.get(kernel) {
            Some(lk) => lk.clone(),
            None => {
                let lk = LoadedKernel::load(&cm.module, kernel)?;
                cm.kernels.insert(kernel.to_string(), lk.clone());
                lk
            }
        };
        Ok((lk, stats))
    }

    /// The instrumented-run pipeline shared by every launch entry point:
    /// registers a launch epoch (ordered after `stream`'s previous launch),
    /// executes with logging, detects, and drains the races the launch
    /// exposed — which may involve state left by *earlier* launches
    /// (inter-kernel races) or host operations (host-device races).
    pub(crate) fn run_launch(
        &mut self,
        stream: StreamId,
        kernel: &str,
        lk: &LoadedKernel,
        istats: InstrumentStats,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        if self.config.interleave_kernels {
            return self.defer_launch(stream, kernel, lk, istats, dims, params);
        }
        let shared_size = lk.kernel.shared_size();
        // Re-arm the cancel token: a cancellation aimed at a *previous*
        // launch (e.g. a watchdog firing after completion) must not kill
        // this one.
        self.core.cancel_token().reset();
        let pred = self.streams[stream.index()].last_epoch;
        let det = Arc::new(self.core.begin_launch(dims, shared_size, pred));
        let epoch = det.epoch();
        let start = Instant::now();

        let mut degradation: Vec<Diagnostic> = Vec::new();
        let result = match self.config.mode {
            DetectionMode::Synchronous => self.run_sync(lk, dims, params, &det),
            DetectionMode::Threaded => self.run_threaded(lk, dims, params, &det, &mut degradation),
        };
        // Whatever happened, the launch epoch is over: shared-memory sync
        // state dies with it.
        self.core.finish_launch();
        let (launch, records, events, census, shadow_paths, mut pipeline) = match result {
            Ok(t) => t,
            Err(e) => {
                // Partial reports of a failed launch must not leak into
                // the next operation's analysis.
                let _ = self.core.drain();
                return Err(e);
            }
        };
        self.streams[stream.index()].last_epoch = Some(epoch);

        // Per-stream cumulative telemetry (the serving path's fairness
        // observability): indexed by stream id, grown on first use.
        let si = stream.index();
        if self.stream_stats.len() <= si {
            self.stream_stats
                .resize_with(si + 1, StreamTelemetry::default);
        }
        let ss = &mut self.stream_stats[si];
        ss.stream = stream.0;
        ss.launches += 1;
        ss.records += records;
        ss.dropped += pipeline.records_dropped;
        ss.stall_cycles += pipeline.producer_stall_cycles;
        ss.peak_depth = ss.peak_depth.max(pipeline.queue_high_water);
        pipeline.per_stream = self.stream_stats.clone();

        let stats = AnalysisStats {
            instrument: istats,
            launch,
            records,
            events,
            format_census: census,
            sync_locations: self.core.sync_location_count(),
            shadow_pages: self.core.shadow_page_count(),
            shadow_bytes: det.shadow_bytes(),
            shadow_paths,
            detection_time: start.elapsed(),
            pipeline,
        };
        let (races, mut diagnostics) = self.core.drain();
        diagnostics.extend(degradation);
        self.host_trace.push(HostOp::LaunchKernel {
            stream: stream.0,
            epoch,
        });
        self.launches.push(LaunchSummary {
            epoch,
            stream: stream.0,
            kernel: kernel.to_string(),
            races: races.len(),
            records,
            events,
        });
        Ok(Analysis::new(races, diagnostics, stats))
    }

    /// Synchronous path: collect, then process on the calling thread.
    fn run_sync(
        &mut self,
        lk: &LoadedKernel,
        dims: GridDims,
        params: &[ParamValue],
        det: &Arc<Detector>,
    ) -> Result<LaunchTallies, Error> {
        let sink = VecSink::new();
        let launch = self.gpu.launch_loaded(lk, dims, params, Some(&sink))?;
        let recs = sink.take();
        let nrecs = recs.len() as u64;
        let mut worker = Worker::new(det);
        for r in &recs {
            worker.process_record(r);
        }
        let events = worker.event_count();
        let census = worker.format_census();
        let paths = worker.path_stats();
        let pipeline = PipelineStats {
            queues: 0,
            per_worker: vec![WorkerTelemetry {
                worker: 0,
                events,
                format_census: census,
                corrupt_records: 0,
                panicked: false,
            }],
            ..PipelineStats::default()
        };
        Ok((launch, nrecs, events, census, paths, pipeline))
    }

    /// Threaded path: the persistent worker pool drains the queues while
    /// the simulation produces into them.
    fn run_threaded(
        &mut self,
        lk: &LoadedKernel,
        dims: GridDims,
        params: &[ParamValue],
        det: &Arc<Detector>,
        degradation: &mut Vec<Diagnostic>,
    ) -> Result<LaunchTallies, Error> {
        let nqueues = self.config.num_queues();
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(nqueues, self.config.queue_capacity));
        }
        let plan = self.config.fault_plan.clone().map(Arc::new);
        let order = Arc::new(SyncOrder::new(nqueues));
        let done = Arc::new(AtomicBool::new(false));
        let queues = {
            let pool = self.pool.as_ref().expect("spawned above");
            for tx in &pool.txs {
                tx.send(LaunchCmd {
                    dets: vec![Arc::clone(det)],
                    plan: plan.clone(),
                    order: Arc::clone(&order),
                    done: Arc::clone(&done),
                    sharded: self.config.sharded_routing,
                })
                .expect("pool worker alive");
            }
            Arc::clone(&pool.queues)
        };
        let sink = PipelineSink::new(
            &queues,
            plan.as_deref(),
            self.config.push_stall_budget,
            &order,
            det.epoch(),
            self.config.sharded_routing,
        );
        let launch_res = self.gpu.launch_loaded(lk, dims, params, Some(&sink));
        done.store(true, Ordering::Release);
        let injected = sink.injected_drops();

        // Collect exactly one outcome per worker, indexed by queue.
        let pool = self.pool.as_mut().expect("spawned above");
        let mut slots: Vec<Option<WorkerOutcome>> = (0..nqueues).map(|_| None).collect();
        for _ in 0..nqueues {
            let (qi, outcome) = pool.rx.recv().expect("pool worker alive");
            slots[qi] = Some(outcome);
        }
        // Purge anything a dead worker left behind so the next launch
        // starts with empty queues.
        for q in pool.queues.iter() {
            while q.try_pop().is_some() {}
        }
        // Per-launch queue telemetry: deltas of the monotonic counters.
        let committed_now = pool.queues.total_committed();
        let dropped_now = pool.queues.total_dropped();
        let stalls_now = pool.queues.total_stall_cycles();
        let committed = committed_now - pool.committed;
        let shed = dropped_now - pool.dropped;
        let stall_cycles = stalls_now - pool.stalls;
        pool.committed = committed_now;
        pool.dropped = dropped_now;
        pool.stalls = stalls_now;
        let high_water = pool.queues.max_high_water();
        let launch = launch_res?;

        // Merge worker outcomes deterministically, in queue order.
        let mut events = 0u64;
        let mut census = [0u64; 4];
        let mut corrupt = 0u64;
        let mut paths = PathStats::default();
        let mut per_worker = Vec::with_capacity(nqueues);
        for (qi, outcome) in slots.into_iter().enumerate() {
            match outcome.expect("one outcome per worker") {
                WorkerOutcome::Finished(t) => {
                    events += t.events;
                    for (c, n) in census.iter_mut().zip(t.census) {
                        *c += n;
                    }
                    corrupt += t.corrupt;
                    paths.merge(&t.paths);
                    per_worker.push(WorkerTelemetry {
                        worker: qi,
                        events: t.events,
                        format_census: t.census,
                        corrupt_records: t.corrupt,
                        panicked: false,
                    });
                }
                WorkerOutcome::Panicked(message) => {
                    degradation.push(Diagnostic::WorkerPanic {
                        worker: qi as u64,
                        message,
                    });
                    per_worker.push(WorkerTelemetry {
                        worker: qi,
                        panicked: true,
                        ..WorkerTelemetry::default()
                    });
                }
            }
        }
        let dropped = shed + injected;
        if dropped > 0 || corrupt > 0 {
            degradation.push(Diagnostic::LostRecords { dropped, corrupt });
        }
        let pipeline = PipelineStats {
            queues: nqueues,
            queue_high_water: high_water,
            producer_stall_cycles: stall_cycles,
            records_dropped: dropped,
            records_corrupt: corrupt,
            worker_panics: degradation
                .iter()
                .filter(|d| matches!(d, Diagnostic::WorkerPanic { .. }))
                .count() as u64,
            per_worker,
            // Filled by `run_launch` once the stream tallies are updated.
            per_stream: Vec::new(),
        };
        // `records` counts what the device logger produced, whether or
        // not it survived the trip to a worker.
        Ok((launch, committed + dropped, events, census, paths, pipeline))
    }

    /// Defers the launch into the pending co-resident group
    /// ([`BarracudaConfig::interleave_kernels`]): the epoch, its
    /// happens-before edges and its detector are fixed *now*, execution
    /// happens at the next flush. The returned analysis is a stub (races
    /// surface at the synchronization point that flushes the group) —
    /// unless the group was full, in which case the forced flush's races
    /// ride along.
    fn defer_launch(
        &mut self,
        stream: StreamId,
        kernel: &str,
        lk: &LoadedKernel,
        istats: InstrumentStats,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        assert!(stream.index() < self.streams.len(), "unknown stream");
        // The record slot byte caps co-residency.
        let (mut races, mut diagnostics) = (Vec::new(), Vec::new());
        if self.pending.len() >= MAX_GROUP_SLOTS {
            let out = self.flush_pending_inner()?;
            races = out.races;
            diagnostics = out.diagnostics;
        }
        let shared_size = lk.kernel.shared_size();
        let pred = self.streams[stream.index()].last_epoch;
        let det = self.core.begin_launch(dims, shared_size, pred);
        let epoch = det.epoch();
        // Same-stream order inside one group is the scheduler's job; a
        // predecessor that already flushed needs no gate (it has run).
        let dep = pred.and_then(|p| self.pending.iter().position(|pl| pl.epoch == p));
        self.streams[stream.index()].last_epoch = Some(epoch);
        self.host_trace.push(HostOp::LaunchKernel {
            stream: stream.0,
            epoch,
        });
        let summary_index = self.launches.len();
        self.launches.push(LaunchSummary {
            epoch,
            stream: stream.0,
            kernel: kernel.to_string(),
            races: 0,
            records: 0,
            events: 0,
        });
        self.pending.push(PendingLaunch {
            stream,
            epoch,
            det,
            lk: lk.clone(),
            dims,
            params: params.to_vec(),
            dep,
            summary_index,
        });
        let stats = AnalysisStats {
            instrument: istats,
            ..AnalysisStats::default()
        };
        Ok(Analysis::new(races, diagnostics, stats))
    }

    /// Executes every deferred launch as one co-resident group under the
    /// configured [`scheduler`](BarracudaConfig::scheduler) and returns
    /// the races the group exposed. A no-op returning no races in eager
    /// mode (or with nothing pending). The synchronization entry points
    /// ([`memcpy_h2d`](Engine::memcpy_h2d),
    /// [`stream_synchronize`](Engine::stream_synchronize),
    /// [`device_synchronize`](Engine::device_synchronize)) call this
    /// before joining, so a barrier on *any* stream drains *all* pending
    /// work — exactly the co-residency window real hardware would have
    /// closed by then.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the group's simulation fails (barrier
    /// divergence, timeout, cancellation); the pending set is consumed
    /// either way.
    pub fn flush_pending(&mut self) -> Result<Vec<RaceReport>, Error> {
        Ok(self.flush_pending_inner()?.races)
    }

    /// Launches deferred and not yet flushed (always 0 in eager mode).
    pub fn pending_launches(&self) -> usize {
        self.pending.len()
    }

    /// `check`/`check_module` epilogue in interleave mode: flush the
    /// group the checked launch just joined and rebuild a full analysis
    /// for *its* slot from the group tallies, so one-shot checks are
    /// indistinguishable from eager mode apart from scheduling.
    fn flush_for_check(&mut self, deferred: Analysis) -> Result<Analysis, Error> {
        if !self.config.interleave_kernels {
            return Ok(deferred);
        }
        let slot = self
            .pending
            .len()
            .checked_sub(1)
            .expect("check just deferred a launch");
        let istats = deferred.stats().instrument;
        let out = self.flush_pending_inner()?;
        let stats = AnalysisStats {
            instrument: istats,
            launch: out.tallies.stats[slot],
            records: out.tallies.records[slot],
            events: out.tallies.events[slot],
            format_census: out.tallies.census,
            sync_locations: self.core.sync_location_count(),
            shadow_pages: self.core.shadow_page_count(),
            shadow_bytes: out.shadow_bytes,
            shadow_paths: out.tallies.paths,
            detection_time: out.detection_time,
            pipeline: out.tallies.pipeline,
        };
        Ok(Analysis::new(out.races, out.diagnostics, stats))
    }

    /// The group flush pipeline: refresh registries, execute co-resident,
    /// demultiplex detection by slot, attribute telemetry and races back
    /// to the individual launches.
    fn flush_pending_inner(&mut self) -> Result<FlushOutcome, Error> {
        if self.pending.is_empty() {
            return Ok(FlushOutcome::default());
        }
        let pending = std::mem::take(&mut self.pending);
        // Re-arm the cancel token once for the whole group.
        self.core.cancel_token().reset();
        let start = Instant::now();
        let n = pending.len();
        let mut dets: Vec<Arc<Detector>> = Vec::with_capacity(n);
        let mut meta: Vec<(StreamId, u32, usize)> = Vec::with_capacity(n);
        let mut bodies: Vec<(LoadedKernel, GridDims, Vec<ParamValue>, Option<usize>)> =
            Vec::with_capacity(n);
        for p in pending {
            let mut det = p.det;
            // The registry snapshot frozen at registration does not know
            // launches registered after it; refresh so races against a
            // younger sibling still classify by epoch.
            self.core.refresh_registry(&mut det);
            dets.push(Arc::new(det));
            meta.push((p.stream, p.epoch, p.summary_index));
            bodies.push((p.lk, p.dims, p.params, p.dep));
        }
        let gls: Vec<GroupLaunch<'_>> = bodies
            .iter()
            .map(|(lk, dims, params, dep)| GroupLaunch {
                lk,
                dims: *dims,
                params,
                dep: *dep,
            })
            .collect();

        let mut degradation: Vec<Diagnostic> = Vec::new();
        let result = match self.config.mode {
            DetectionMode::Synchronous => self.run_group_sync(&gls, &dets),
            DetectionMode::Threaded => self.run_group_threaded(&gls, &dets, &mut degradation),
        };
        // The group's epochs are over: shared-memory sync state dies with
        // them.
        self.core.finish_launch();
        let mut tallies = match result {
            Ok(t) => t,
            Err(e) => {
                // Partial reports of a failed group must not leak into
                // the next operation's analysis.
                let _ = self.core.drain();
                return Err(e);
            }
        };

        // Per-stream telemetry, attributed slot-by-slot so interleaved
        // epochs do not cross-pollute: records and drops carry the
        // emitting launch's slot byte. Stall cycles and queue depth are
        // properties of the *shared* queues, unattributable to one
        // stream of an interleaved group; they stay on the group's
        // pipeline stats.
        for &(stream, _, _) in &meta {
            let si = stream.index();
            if self.stream_stats.len() <= si {
                self.stream_stats
                    .resize_with(si + 1, StreamTelemetry::default);
            }
        }
        for (slot, &(stream, _, _)) in meta.iter().enumerate() {
            let ss = &mut self.stream_stats[stream.index()];
            ss.stream = stream.0;
            ss.launches += 1;
            ss.records += tallies.records[slot];
            ss.dropped += tallies.dropped[slot];
        }
        tallies.pipeline.per_stream = self.stream_stats.clone();

        let (races, mut diagnostics) = self.core.drain();
        diagnostics.append(&mut degradation);
        // Attribute each race to the slot whose epoch performed the
        // detecting access (host-side detections attribute to no slot).
        let mut race_counts = vec![0usize; n];
        for r in &races {
            if let Some(e) = self.core.epoch_of_tid(r.current.0 .0) {
                if let Some(slot) = meta.iter().position(|&(_, ep, _)| ep == e) {
                    race_counts[slot] += 1;
                }
            }
        }
        for (slot, &(_, _, sidx)) in meta.iter().enumerate() {
            let s = &mut self.launches[sidx];
            s.races = race_counts[slot];
            s.records = tallies.records[slot];
            s.events = tallies.events[slot];
        }
        let shadow_bytes = dets[0].shadow_bytes();
        Ok(FlushOutcome {
            races,
            diagnostics,
            tallies,
            detection_time: start.elapsed(),
            shadow_bytes,
        })
    }

    /// Synchronous group path: run co-resident into one record vector,
    /// then demultiplex to per-slot workers in emission order — the
    /// interleaving is preserved exactly as the scheduler produced it.
    fn run_group_sync(
        &mut self,
        gls: &[GroupLaunch<'_>],
        dets: &[Arc<Detector>],
    ) -> Result<GroupTallies, Error> {
        let sink = VecSink::new();
        let outcome = self
            .gpu
            .launch_group(gls, self.config.scheduler, Some(&sink))?;
        let recs = sink.take();
        let mut workers: Vec<Worker<'_>> = dets.iter().map(|d| Worker::new(d)).collect();
        for r in &recs {
            workers[usize::from(r.slot)].process_record(r);
        }
        let mut tallies = GroupTallies {
            stats: outcome.stats,
            records: outcome.records,
            dropped: vec![0; dets.len()],
            ..GroupTallies::default()
        };
        let mut per_worker = Vec::with_capacity(dets.len());
        for (si, w) in workers.iter().enumerate() {
            let events = w.event_count();
            tallies.events.push(events);
            let c = w.format_census();
            for (acc, n) in tallies.census.iter_mut().zip(c) {
                *acc += n;
            }
            tallies.paths.merge(&w.path_stats());
            per_worker.push(WorkerTelemetry {
                worker: si,
                events,
                format_census: c,
                corrupt_records: 0,
                panicked: false,
            });
        }
        tallies.pipeline = PipelineStats {
            queues: 0,
            per_worker,
            ..PipelineStats::default()
        };
        Ok(tallies)
    }

    /// Threaded group path: the persistent worker pool drains the shared
    /// queues while the co-resident simulation produces into them; every
    /// worker demultiplexes records to per-slot detectors by the slot
    /// byte.
    fn run_group_threaded(
        &mut self,
        gls: &[GroupLaunch<'_>],
        dets: &[Arc<Detector>],
        degradation: &mut Vec<Diagnostic>,
    ) -> Result<GroupTallies, Error> {
        let nslots = dets.len();
        let nqueues = self.config.num_queues();
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(nqueues, self.config.queue_capacity));
        }
        let plan = self.config.fault_plan.clone().map(Arc::new);
        let order = Arc::new(SyncOrder::new(nqueues));
        let done = Arc::new(AtomicBool::new(false));
        let queues = {
            let pool = self.pool.as_ref().expect("spawned above");
            for tx in &pool.txs {
                tx.send(LaunchCmd {
                    dets: dets.to_vec(),
                    plan: plan.clone(),
                    order: Arc::clone(&order),
                    done: Arc::clone(&done),
                    sharded: self.config.sharded_routing,
                })
                .expect("pool worker alive");
            }
            Arc::clone(&pool.queues)
        };
        let sink = PipelineSink::new(
            &queues,
            plan.as_deref(),
            self.config.push_stall_budget,
            &order,
            dets[0].epoch(),
            self.config.sharded_routing,
        );
        let launch_res = self.gpu.launch_group(gls, self.config.scheduler, Some(&sink));
        done.store(true, Ordering::Release);
        let injected = sink.injected_drops();
        let dropped_per_slot: Vec<u64> = (0..nslots)
            .map(|si| sink.dropped_for_slot(si as u8))
            .collect();

        // Collect exactly one outcome per worker, indexed by queue.
        let pool = self.pool.as_mut().expect("spawned above");
        let mut slots: Vec<Option<WorkerOutcome>> = (0..nqueues).map(|_| None).collect();
        for _ in 0..nqueues {
            let (qi, outcome) = pool.rx.recv().expect("pool worker alive");
            slots[qi] = Some(outcome);
        }
        // Purge anything a dead worker left behind so the next group
        // starts with empty queues.
        for q in pool.queues.iter() {
            while q.try_pop().is_some() {}
        }
        // Per-group queue telemetry: deltas of the monotonic counters.
        let committed_now = pool.queues.total_committed();
        let dropped_now = pool.queues.total_dropped();
        let stalls_now = pool.queues.total_stall_cycles();
        let shed = dropped_now - pool.dropped;
        let stall_cycles = stalls_now - pool.stalls;
        pool.committed = committed_now;
        pool.dropped = dropped_now;
        pool.stalls = stalls_now;
        let high_water = pool.queues.max_high_water();
        let outcome = launch_res?;

        // Merge worker outcomes deterministically, in queue order.
        let mut events_per_slot = vec![0u64; nslots];
        let mut census = [0u64; 4];
        let mut corrupt = 0u64;
        let mut paths = PathStats::default();
        let mut per_worker = Vec::with_capacity(nqueues);
        for (qi, outcome) in slots.into_iter().enumerate() {
            match outcome.expect("one outcome per worker") {
                WorkerOutcome::Finished(t) => {
                    for (si, e) in t.slot_events.iter().enumerate() {
                        events_per_slot[si] += e;
                    }
                    for (c, n) in census.iter_mut().zip(t.census) {
                        *c += n;
                    }
                    corrupt += t.corrupt;
                    paths.merge(&t.paths);
                    per_worker.push(WorkerTelemetry {
                        worker: qi,
                        events: t.events,
                        format_census: t.census,
                        corrupt_records: t.corrupt,
                        panicked: false,
                    });
                }
                WorkerOutcome::Panicked(message) => {
                    degradation.push(Diagnostic::WorkerPanic {
                        worker: qi as u64,
                        message,
                    });
                    per_worker.push(WorkerTelemetry {
                        worker: qi,
                        panicked: true,
                        ..WorkerTelemetry::default()
                    });
                }
            }
        }
        let dropped = shed + injected;
        if dropped > 0 || corrupt > 0 {
            degradation.push(Diagnostic::LostRecords { dropped, corrupt });
        }
        let pipeline = PipelineStats {
            queues: nqueues,
            queue_high_water: high_water,
            producer_stall_cycles: stall_cycles,
            records_dropped: dropped,
            records_corrupt: corrupt,
            worker_panics: degradation
                .iter()
                .filter(|d| matches!(d, Diagnostic::WorkerPanic { .. }))
                .count() as u64,
            per_worker,
            // Filled by `flush_pending_inner` once stream tallies update.
            per_stream: Vec::new(),
        };
        Ok(GroupTallies {
            stats: outcome.stats,
            // Device-side per-slot emission counts: what the logger
            // produced, whether or not it survived the trip to a worker.
            records: outcome.records,
            events: events_per_slot,
            dropped: dropped_per_slot,
            census,
            paths,
            pipeline,
        })
    }
}

/// Cache key: a tagged hash (text sources and printed ASTs share the map
/// but can never collide by construction).
pub(crate) fn hash_key(tag: u8, text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    text.hash(&mut h);
    h.finish()
}
