//! The CUDA-style host API of a persistent engine: streams, asynchronous
//! launches, checked memory copies, and synchronization.
//!
//! These entry points mirror the driver calls the paper's tool interposes
//! on (§4.1) and build the host↔device happens-before edges the engine
//! detects against:
//!
//! * launches on the **same stream** are ordered; launches on different
//!   streams are concurrent;
//! * a **memcpy** is stream-ordered *and* blocks the host thread, so it
//!   joins its stream's work into the host's view — but it does not wait
//!   for other streams, and can race with their in-flight kernels;
//! * **`stream_synchronize`** / **`device_synchronize`** join the waited
//!   work into the host's view, cutting later host-device races.

use crate::engine::{hash_key, Engine};
use crate::session::KernelRun;
use crate::sink::HostOpBuffer;
use crate::{Analysis, Error};
use barracuda_core::RaceReport;
use barracuda_instrument::instrument_module;
use barracuda_simt::DevicePtr;
use barracuda_trace::HostOp;

/// Handle to an execution stream. Stream 0 is the default stream and
/// exists from engine construction; others come from
/// [`Engine::create_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream.
    pub const DEFAULT: StreamId = StreamId(0);

    /// The stream's index into the engine's stream table.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-stream ordering state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StreamState {
    /// Epoch of the most recent launch on this stream (the predecessor of
    /// the next launch).
    pub(crate) last_epoch: Option<u32>,
}

impl Engine {
    /// Creates a new stream, concurrent with every other stream.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(StreamState::default());
        id
    }

    /// Launches a kernel asynchronously on `stream`: ordered after the
    /// stream's previous launch, concurrent with other streams and with
    /// later host operations. Returns the launch's analysis — races it
    /// exposes may be against *earlier launches* (inter-kernel) or *host
    /// operations* (host-device), not just within the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure.
    ///
    /// # Panics
    ///
    /// Panics on a stream handle not created by this engine.
    pub fn launch_async(
        &mut self,
        stream: StreamId,
        run: &KernelRun<'_>,
    ) -> Result<Analysis, Error> {
        assert!(stream.index() < self.streams.len(), "unknown stream");
        let key = hash_key(0, run.source);
        let source = run.source;
        let (lk, istats) = self.cached_kernel(
            key,
            |opts| {
                let module = barracuda_ptx::parse(source)?;
                Ok(instrument_module(&module, opts))
            },
            run.kernel,
        )?;
        self.run_launch(stream, run.kernel, &lk, istats, run.dims, run.params)
    }

    /// Host-to-device copy on `stream` (`cudaMemcpy` H2D): waits for the
    /// stream's previous work, then writes `data` at `dst` as the host
    /// thread. Returns the races the copy exposed — conflicts with
    /// kernels still in flight on *other* streams. In interleave mode
    /// the copy is a barrier: it first flushes every deferred launch
    /// (the host thread blocks, so nothing stays co-resident past it)
    /// and includes the group's races in its report.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when flushing a deferred co-resident group
    /// fails (interleave mode only; eager copies cannot fail).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream or an unallocated destination.
    pub fn memcpy_h2d(
        &mut self,
        stream: StreamId,
        dst: DevicePtr,
        data: &[u8],
    ) -> Result<Vec<RaceReport>, Error> {
        let mut races = self.flush_pending()?;
        self.join_stream(stream);
        let buf = HostOpBuffer::new();
        self.gpu.write_bytes_traced(dst, data, stream.0, &buf);
        self.host_trace.extend(buf.take());
        self.core.host_write(dst.0, data.len() as u64);
        races.extend(self.core.drain().0);
        Ok(races)
    }

    /// Device-to-host copy on `stream` (`cudaMemcpy` D2H): waits for the
    /// stream's previous work, then reads `len = out.len()` bytes at
    /// `src` as the host thread. Returns the races the copy exposed.
    /// A barrier for deferred co-resident launches, exactly like
    /// [`memcpy_h2d`](Engine::memcpy_h2d).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when flushing a deferred co-resident group
    /// fails (interleave mode only; eager copies cannot fail).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream or an unallocated source.
    pub fn memcpy_d2h(
        &mut self,
        stream: StreamId,
        src: DevicePtr,
        out: &mut [u8],
    ) -> Result<Vec<RaceReport>, Error> {
        let mut races = self.flush_pending()?;
        self.join_stream(stream);
        let buf = HostOpBuffer::new();
        self.gpu.read_bytes_traced(src, out, stream.0, &buf);
        self.host_trace.extend(buf.take());
        self.core.host_read(src.0, out.len() as u64);
        races.extend(self.core.drain().0);
        Ok(races)
    }

    /// `cudaStreamSynchronize`: the host waits for everything previously
    /// enqueued on `stream`; later host operations are ordered after it.
    /// A barrier for deferred co-resident launches: the whole pending
    /// group executes first and its races are returned (empty in eager
    /// mode).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when flushing a deferred co-resident group
    /// fails (interleave mode only).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream.
    pub fn stream_synchronize(&mut self, stream: StreamId) -> Result<Vec<RaceReport>, Error> {
        let races = self.flush_pending()?;
        self.join_stream(stream);
        self.host_trace
            .push(HostOp::StreamSynchronize { stream: stream.0 });
        Ok(races)
    }

    /// `cudaDeviceSynchronize`: the host waits for every launch on every
    /// stream. A barrier for deferred co-resident launches, like
    /// [`stream_synchronize`](Engine::stream_synchronize).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when flushing a deferred co-resident group
    /// fails (interleave mode only).
    pub fn device_synchronize(&mut self) -> Result<Vec<RaceReport>, Error> {
        let races = self.flush_pending()?;
        self.core.join_all();
        self.host_trace.push(HostOp::DeviceSynchronize);
        Ok(races)
    }

    /// Joins the stream's most recent launch (and, transitively, all its
    /// predecessors) into the host's view.
    fn join_stream(&mut self, stream: StreamId) {
        assert!(stream.index() < self.streams.len(), "unknown stream");
        if let Some(e) = self.streams[stream.index()].last_epoch {
            self.core.join_epoch(e);
        }
    }
}
