//! The process exit-code contract, pinned in one place.
//!
//! Every BARRACUDA entry point that reports a verdict through a process
//! exit status — the one-shot CLI, the server's per-request verdicts as
//! surfaced by the CLI client, CI scripts — uses this taxonomy. Codes
//! must agree across modes: `barracuda check foo.ptx` and the same
//! request served by `barracuda serve` map the same analysis to the same
//! code (pinned by the serve crate's CLI tests).
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean: no races, no diagnostics, pipeline lossless |
//! | 1    | races (or non-degradation diagnostics) found |
//! | 2    | usage error (bad arguments, unreadable input) |
//! | 3    | timeout or cancellation: the run did not complete |
//! | 4    | degraded but completed: the pipeline lost records or a worker died, and the surviving analysis found nothing — a sound lower bound, **not** a clean bill |
//!
//! Races dominate degradation: a degraded run that still found races
//! exits 1 (the finding is real regardless of what was lost). Degradation
//! dominates cleanliness: a lossy run that found nothing must not exit 0,
//! because the evidence for "clean" is incomplete.

use crate::analysis::Analysis;
use crate::Error;
use barracuda_simt::SimError;

/// No races, no diagnostics, lossless pipeline.
pub const CLEAN: u8 = 0;
/// Races (or non-degradation diagnostics) were found.
pub const RACES: u8 = 1;
/// Usage error: bad arguments or unreadable input.
pub const USAGE: u8 = 2;
/// The run did not complete: step-budget timeout, wall-clock deadline,
/// or cooperative cancellation.
pub const TIMEOUT: u8 = 3;
/// The run completed degraded (lost records / dead worker) and found no
/// races: a sound lower bound, not a clean verdict.
pub const DEGRADED: u8 = 4;

/// The exit code for a completed analysis.
pub fn for_analysis(analysis: &Analysis) -> u8 {
    if analysis.race_count() > 0 {
        RACES
    } else if analysis.is_degraded() {
        DEGRADED
    } else if analysis.is_clean() {
        CLEAN
    } else {
        // Diagnostics that are findings (not degradation), e.g. barrier
        // divergence surfaced as a diagnostic.
        RACES
    }
}

/// The exit code for a run that failed with `err`.
pub fn for_error(err: &Error) -> u8 {
    match err {
        Error::Sim(SimError::Timeout { .. }) | Error::Sim(SimError::Cancelled { .. }) => TIMEOUT,
        _ => USAGE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisStats;
    use barracuda_core::{AccessType, Diagnostic, RaceClass, RaceReport};
    use barracuda_trace::{MemSpace, Tid};

    fn a(races: usize, diags: Vec<Diagnostic>) -> Analysis {
        let race = RaceReport {
            space: MemSpace::Global,
            block: None,
            addr: 0,
            current: (Tid(0), AccessType::Write),
            previous: (Tid(1), AccessType::Write),
            class: RaceClass::InterBlock,
        };
        Analysis::new(vec![race; races], diags, AnalysisStats::default())
    }

    #[test]
    fn taxonomy() {
        assert_eq!(for_analysis(&a(0, vec![])), CLEAN);
        assert_eq!(for_analysis(&a(2, vec![])), RACES);
        let lost = Diagnostic::LostRecords {
            dropped: 5,
            corrupt: 0,
        };
        assert_eq!(for_analysis(&a(0, vec![lost.clone()])), DEGRADED);
        // Races dominate degradation.
        assert_eq!(for_analysis(&a(1, vec![lost])), RACES);
    }

    #[test]
    fn error_codes() {
        assert_eq!(
            for_error(&Error::Sim(SimError::Timeout { steps: 9 })),
            TIMEOUT
        );
        assert_eq!(
            for_error(&Error::Sim(SimError::Cancelled { steps: 9 })),
            TIMEOUT
        );
        assert_eq!(
            for_error(&Error::Sim(SimError::UnknownKernel("k".into()))),
            USAGE
        );
    }
}
