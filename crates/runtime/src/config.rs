//! Session and engine configuration.

use barracuda_instrument::InstrumentOptions;
use barracuda_simt::{GpuConfig, SchedPolicy};
use barracuda_trace::FaultPlan;

/// How detector workers consume the device-side queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Collect all records, then process them on the calling thread in
    /// emission order. Deterministic; used by tests.
    Synchronous,
    /// One host thread per queue, draining concurrently with the
    /// simulation — the paper's architecture (§4.3). With a persistent
    /// engine the worker threads outlive individual launches.
    Threaded,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct BarracudaConfig {
    /// Simulator configuration.
    pub gpu: GpuConfig,
    /// Instrumentation options.
    pub instrument: InstrumentOptions,
    /// Queue-consumption mode.
    pub mode: DetectionMode,
    /// Records per queue (the paper reserves a fraction of GPU memory;
    /// capacity expresses the same back-pressure).
    pub queue_capacity: usize,
    /// Queues per streaming multiprocessor; the paper found ~1.1–1.5
    /// optimal (§4.2).
    pub queues_per_sm: f64,
    /// Producer stall budget (spin-yield cycles) before a full queue
    /// sheds the record instead of blocking forever. Bounds the damage of
    /// a dead or wedged consumer: shed records surface as a
    /// [`LostRecords`] diagnostic rather than a deadlock. The default is
    /// generous enough that healthy runs never shed.
    ///
    /// [`LostRecords`]: barracuda_core::Diagnostic::LostRecords
    pub push_stall_budget: u64,
    /// Deterministic fault injection for the threaded pipeline
    /// (chaos testing); `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Warp-coalesced shadow fast paths in the detector (on by default).
    /// Off forces the paper-literal per-byte, lock-per-byte sweep — the
    /// differential-testing and benchmarking baseline.
    pub detector_fast_paths: bool,
    /// Sharded (page-hash) record routing for [`DetectionMode::Threaded`]
    /// (off by default). Plain global accesses route to workers by shadow
    ///-page hash — splitting page-straddling accesses into per-page
    /// fragments — and each worker updates its exclusive page partition
    /// without page locks; sync and control records are replicated to
    /// every queue so each worker keeps an exact copy of every warp's
    /// clocks. Ignored in [`DetectionMode::Synchronous`].
    pub sharded_routing: bool,
    /// Co-resident kernel interleaving (off by default). When on,
    /// [`launch_async`](crate::Engine::launch_async) *defers* the launch:
    /// kernels accumulate until a synchronization point (a memcpy,
    /// `stream_synchronize`, `device_synchronize`, or an explicit
    /// [`flush_pending`](crate::Engine::flush_pending)) and then execute
    /// as one co-resident group whose warps genuinely interleave under
    /// [`scheduler`](BarracudaConfig::scheduler). Same-stream launches
    /// keep their order inside the group; verdicts are
    /// schedule-independent because happens-before edges are fixed at
    /// registration time, before any schedule is chosen.
    pub interleave_kernels: bool,
    /// Warp-scheduling policy for co-resident groups (ignored unless
    /// [`interleave_kernels`](BarracudaConfig::interleave_kernels) is on).
    pub scheduler: SchedPolicy,
}

impl Default for BarracudaConfig {
    fn default() -> Self {
        BarracudaConfig {
            gpu: GpuConfig::default(),
            instrument: InstrumentOptions::default(),
            mode: DetectionMode::Synchronous,
            queue_capacity: 16 * 1024,
            queues_per_sm: 1.25,
            push_stall_budget: 1 << 18,
            fault_plan: None,
            detector_fast_paths: true,
            sharded_routing: false,
            interleave_kernels: false,
            scheduler: SchedPolicy::RoundRobin,
        }
    }
}

impl BarracudaConfig {
    /// Number of queues for this configuration.
    pub fn num_queues(&self) -> usize {
        ((f64::from(self.gpu.num_sms) * self.queues_per_sm).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_queues_follows_sm_count() {
        let cfg = BarracudaConfig::default();
        // 24 SMs × 1.25 = 30 queues (paper: ~1.1–1.5 queues per SM).
        assert_eq!(cfg.num_queues(), 30);
    }
}
