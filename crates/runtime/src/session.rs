//! The detection session: instrument → execute → detect.

use crate::analysis::{Analysis, AnalysisStats, PipelineStats, WorkerTelemetry};
use crate::Error;
use barracuda_core::{Detector, Diagnostic, Worker};
use barracuda_instrument::{instrument_module, InstrumentOptions};
use barracuda_ptx::ast::Module;
use barracuda_simt::{EventSink, Gpu, GpuConfig, LaunchStats, LoadedKernel, ParamValue, VecSink};
use barracuda_trace::{FaultPlan, GridDims, PushOutcome, QueueSet, Record, SyncOrder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// How detector workers consume the device-side queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Collect all records, then process them on the calling thread in
    /// emission order. Deterministic; used by tests.
    Synchronous,
    /// One host thread per queue, draining concurrently with the
    /// simulation — the paper's architecture (§4.3).
    Threaded,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct BarracudaConfig {
    /// Simulator configuration.
    pub gpu: GpuConfig,
    /// Instrumentation options.
    pub instrument: InstrumentOptions,
    /// Queue-consumption mode.
    pub mode: DetectionMode,
    /// Records per queue (the paper reserves a fraction of GPU memory;
    /// capacity expresses the same back-pressure).
    pub queue_capacity: usize,
    /// Queues per streaming multiprocessor; the paper found ~1.1–1.5
    /// optimal (§4.2).
    pub queues_per_sm: f64,
    /// Producer stall budget (spin-yield cycles) before a full queue
    /// sheds the record instead of blocking forever. Bounds the damage of
    /// a dead or wedged consumer: shed records surface as a
    /// [`Diagnostic::LostRecords`] rather than a deadlock. The default is
    /// generous enough that healthy runs never shed.
    pub push_stall_budget: u64,
    /// Deterministic fault injection for the threaded pipeline
    /// (chaos testing); `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for BarracudaConfig {
    fn default() -> Self {
        BarracudaConfig {
            gpu: GpuConfig::default(),
            instrument: InstrumentOptions::default(),
            mode: DetectionMode::Synchronous,
            queue_capacity: 16 * 1024,
            queues_per_sm: 1.25,
            push_stall_budget: 1 << 18,
            fault_plan: None,
        }
    }
}

impl BarracudaConfig {
    /// Number of queues for this configuration.
    pub fn num_queues(&self) -> usize {
        ((f64::from(self.gpu.num_sms) * self.queues_per_sm).ceil() as usize).max(1)
    }
}

/// The producer-side sink of the threaded pipeline: routes records to
/// their block's queue with bounded-stall backpressure, and applies the
/// producer-side faults of a [`FaultPlan`] (drops, corruption).
///
/// A queue whose bounded push ever times out is marked *wedged*: its
/// consumer is presumed dead or badly stalled, and later records for it
/// pay at most one fast full-check instead of the whole stall budget
/// again, so a single dead worker cannot slow the simulation to a crawl.
struct PipelineSink<'a> {
    queues: &'a QueueSet,
    plan: Option<&'a FaultPlan>,
    stall_budget: u64,
    /// Cross-queue ordering of synchronization records: a ticket is
    /// issued for every global-sync record that actually enqueues, so
    /// workers apply them in emission order.
    order: &'a SyncOrder,
    /// Per-queue producer sequence numbers (fault-decision coordinates).
    seq: Vec<AtomicU64>,
    /// Queues that exhausted a stall budget once.
    wedged: Vec<AtomicBool>,
    /// Records dropped by fault injection (not by backpressure).
    injected_drops: AtomicU64,
}

impl<'a> PipelineSink<'a> {
    fn new(
        queues: &'a QueueSet,
        plan: Option<&'a FaultPlan>,
        stall_budget: u64,
        order: &'a SyncOrder,
    ) -> Self {
        PipelineSink {
            queues,
            plan,
            stall_budget,
            order,
            seq: (0..queues.len()).map(|_| AtomicU64::new(0)).collect(),
            wedged: (0..queues.len()).map(|_| AtomicBool::new(false)).collect(),
            injected_drops: AtomicU64::new(0),
        }
    }
}

impl EventSink for PipelineSink<'_> {
    fn emit(&self, block: u64, mut record: Record) {
        let qi = (block % self.queues.len() as u64) as usize;
        if let Some(plan) = self.plan {
            let seq = self.seq[qi].fetch_add(1, Ordering::Relaxed);
            if plan.should_drop(qi as u64, seq) {
                self.injected_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if let Some(kind) = plan.corrupt_kind(qi as u64, seq) {
                record.kind = kind;
            }
        }
        let q = self.queues.queue(qi);
        // A wedged queue gets a zero budget: drop immediately when full.
        let budget = if self.wedged[qi].load(Ordering::Relaxed) {
            0
        } else {
            self.stall_budget
        };
        if q.push_bounded(record, budget) == PushOutcome::Dropped {
            self.wedged[qi].store(true, Ordering::Relaxed);
        } else if record.is_global_sync() {
            // Only records that made it into a queue get a ticket — a
            // ticket must never wait on a record that is not coming.
            self.order.issue(qi);
        }
    }
}

/// What one detector worker came back with.
enum WorkerOutcome {
    /// `(events, format census, corrupt records skipped)`.
    Finished(u64, [u64; 4], u64),
    /// The worker panicked; the payload's message.
    Panicked(String),
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "unknown panic payload".to_string()
    }
}

/// One kernel launch to check.
#[derive(Debug, Clone, Copy)]
pub struct KernelRun<'a> {
    /// PTX module source.
    pub source: &'a str,
    /// Entry name.
    pub kernel: &'a str,
    /// Launch dimensions.
    pub dims: GridDims,
    /// Kernel arguments.
    pub params: &'a [ParamValue],
}

/// A BARRACUDA session: owns the simulated GPU and checks kernel launches
/// against it.
#[derive(Debug)]
pub struct Barracuda {
    config: BarracudaConfig,
    gpu: Gpu,
}

impl Default for Barracuda {
    fn default() -> Self {
        Self::new()
    }
}

impl Barracuda {
    /// A session with default configuration (synchronous detection,
    /// sequentially-consistent memory).
    pub fn new() -> Self {
        Self::with_config(BarracudaConfig::default())
    }

    /// A session with explicit configuration.
    pub fn with_config(config: BarracudaConfig) -> Self {
        let gpu = Gpu::new(config.gpu.clone());
        Barracuda { config, gpu }
    }

    /// The simulated device, for allocating and initializing buffers.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// The simulated device (read-only: result readback).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The active configuration.
    pub fn config(&self) -> &BarracudaConfig {
        &self.config
    }

    /// Runs the kernel natively (no instrumentation, no detection) and
    /// returns the launch statistics — the baseline for overhead
    /// measurements (Fig. 10).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure.
    pub fn run_native(&mut self, run: &KernelRun<'_>) -> Result<LaunchStats, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        Ok(self.gpu.launch(&module, run.kernel, run.dims, run.params)?)
    }

    /// Instruments the kernel, runs it with device-side logging, and
    /// performs race detection.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure (including barrier
    /// divergence hangs and timeouts).
    pub fn check(&mut self, run: &KernelRun<'_>) -> Result<Analysis, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        self.check_module(&module, run.kernel, run.dims, run.params)
    }

    /// Warp-size portability sweep: checks the kernel under several
    /// simulated warp sizes and returns each analysis.
    ///
    /// The paper notes that portable CUDA code should not assume a warp
    /// size and that BARRACUDA "could simulate the behavior of
    /// smaller/larger warps to find additional latent bugs" (§3.1) — this
    /// method implements that extension. Warp-synchronous code that is
    /// race-free at the hardware warp size often races at a smaller one,
    /// because lockstep ordering no longer covers the accesses.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or parse failure.
    pub fn check_warp_sizes(
        &mut self,
        run: &KernelRun<'_>,
        warp_sizes: &[u32],
    ) -> Result<Vec<(u32, Analysis)>, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        warp_sizes
            .iter()
            .map(|&ws| {
                let dims = GridDims::with_warp_size(run.dims.grid, run.dims.block, ws);
                let analysis = self.check_module(&module, run.kernel, dims, run.params)?;
                Ok((ws, analysis))
            })
            .collect()
    }

    /// Like [`Barracuda::check`] for an already-parsed module.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on simulation failure.
    pub fn check_module(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        let (instrumented, istats) = instrument_module(module, &self.config.instrument);
        let lk = LoadedKernel::load(&instrumented, kernel)?;
        let shared_size = lk.kernel.shared_size();
        let detector = Detector::new(dims, shared_size);
        let start = Instant::now();

        let mut degradation: Vec<Diagnostic> = Vec::new();
        let (launch, records, events, census, pipeline) = match self.config.mode {
            DetectionMode::Synchronous => {
                let sink = VecSink::new();
                let launch = self.gpu.launch_loaded(&lk, dims, params, Some(&sink))?;
                let recs = sink.take();
                let nrecs = recs.len() as u64;
                let mut worker = Worker::new(&detector);
                for r in &recs {
                    worker.process_record(r);
                }
                let events = worker.event_count();
                let census = worker.format_census();
                let pipeline = PipelineStats {
                    queues: 0,
                    per_worker: vec![WorkerTelemetry {
                        worker: 0,
                        events,
                        format_census: census,
                        corrupt_records: 0,
                        panicked: false,
                    }],
                    ..PipelineStats::default()
                };
                (launch, nrecs, events, census, pipeline)
            }
            DetectionMode::Threaded => {
                let nqueues = self.config.num_queues();
                let queues = QueueSet::new(nqueues, self.config.queue_capacity);
                let plan = self.config.fault_plan.as_ref();
                let order = SyncOrder::new(nqueues);
                let sink = PipelineSink::new(&queues, plan, self.config.push_stall_budget, &order);
                let done = AtomicBool::new(false);
                let gpu = &mut self.gpu;
                let detector_ref = &detector;
                let queues_ref = &queues;
                let done_ref = &done;
                let sink_ref = &sink;
                let order_ref = &order;
                let (launch_res, outcomes) = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..nqueues)
                        .map(|qi| {
                            scope.spawn(move || {
                                // Contain panics (injected or real) to
                                // this worker: the session completes with
                                // partial results instead of aborting.
                                let r = catch_unwind(AssertUnwindSafe(|| {
                                    drain_queue(
                                        qi,
                                        nqueues,
                                        queues_ref,
                                        detector_ref,
                                        plan,
                                        done_ref,
                                        order_ref,
                                    )
                                }));
                                if r.is_err() {
                                    // A dead worker must not wedge the
                                    // sync order for the survivors.
                                    order_ref.mark_dead(qi);
                                }
                                r
                            })
                        })
                        .collect();
                    let launch_res = gpu.launch_loaded(&lk, dims, params, Some(sink_ref));
                    done.store(true, Ordering::Release);
                    let outcomes: Vec<WorkerOutcome> = handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(Ok(fine)) => WorkerOutcome::Finished(fine.0, fine.1, fine.2),
                            Ok(Err(payload)) => {
                                WorkerOutcome::Panicked(panic_message(payload.as_ref()))
                            }
                            Err(payload) => {
                                WorkerOutcome::Panicked(panic_message(payload.as_ref()))
                            }
                        })
                        .collect();
                    (launch_res, outcomes)
                });
                let launch = launch_res?;

                // Merge worker outcomes deterministically, in queue order.
                let mut events = 0u64;
                let mut census = [0u64; 4];
                let mut corrupt = 0u64;
                let mut per_worker = Vec::with_capacity(outcomes.len());
                for (qi, outcome) in outcomes.into_iter().enumerate() {
                    match outcome {
                        WorkerOutcome::Finished(e, c, bad) => {
                            events += e;
                            for i in 0..4 {
                                census[i] += c[i];
                            }
                            corrupt += bad;
                            per_worker.push(WorkerTelemetry {
                                worker: qi,
                                events: e,
                                format_census: c,
                                corrupt_records: bad,
                                panicked: false,
                            });
                        }
                        WorkerOutcome::Panicked(message) => {
                            degradation.push(Diagnostic::WorkerPanic {
                                worker: qi as u64,
                                message,
                            });
                            per_worker.push(WorkerTelemetry {
                                worker: qi,
                                panicked: true,
                                ..WorkerTelemetry::default()
                            });
                        }
                    }
                }
                let dropped = queues.total_dropped() + sink.injected_drops.load(Ordering::Relaxed);
                if dropped > 0 || corrupt > 0 {
                    degradation.push(Diagnostic::LostRecords { dropped, corrupt });
                }
                let pipeline = PipelineStats {
                    queues: nqueues,
                    queue_high_water: queues.max_high_water(),
                    producer_stall_cycles: queues.total_stall_cycles(),
                    records_dropped: dropped,
                    records_corrupt: corrupt,
                    worker_panics: degradation
                        .iter()
                        .filter(|d| matches!(d, Diagnostic::WorkerPanic { .. }))
                        .count() as u64,
                    per_worker,
                };
                // `records` counts what the device logger produced,
                // whether or not it survived the trip to a worker.
                (
                    launch,
                    queues.total_committed() + dropped,
                    events,
                    census,
                    pipeline,
                )
            }
        };

        let stats = AnalysisStats {
            instrument: istats,
            launch,
            records,
            events,
            format_census: census,
            sync_locations: detector.sync_location_count(),
            shadow_pages: detector.shadow_page_count(),
            shadow_bytes: detector.shadow_bytes(),
            detection_time: start.elapsed(),
            pipeline,
        };
        let mut diagnostics = detector.races().diagnostics();
        diagnostics.extend(degradation);
        Ok(Analysis::new(
            detector.races().reports(),
            diagnostics,
            stats,
        ))
    }
}

/// The worker loop of one queue consumer: drains records until the launch
/// finishes and the queue is empty, applying the consumer-side faults of
/// the plan (periodic stalls, an injected panic at the Nth record) and
/// skipping records that fail to decode.
///
/// Global-sync records go through the [`SyncOrder`]: the worker waits for
/// the record's ticket to come up, applies it, and completes the ticket,
/// so releases and acquires on different queues hit the detector's
/// synchronization map in device emission order no matter how consumers
/// are scheduled (or chaos-stalled).
///
/// Returns `(events, format census, corrupt records skipped)`.
fn drain_queue(
    qi: usize,
    nworkers: usize,
    queues: &QueueSet,
    detector: &Detector,
    plan: Option<&FaultPlan>,
    done: &AtomicBool,
    order: &SyncOrder,
) -> (u64, [u64; 4], u64) {
    let q = queues.queue(qi);
    let mut worker = Worker::new(detector);
    let mut processed = 0u64;
    let mut corrupt = 0u64;
    let mut sync_idx = 0usize;
    let panic_at = plan.and_then(|p| p.panic_after(qi, nworkers));
    loop {
        if let Some(rec) = q.try_pop() {
            processed += 1;
            if panic_at.is_some_and(|at| processed > at) {
                // resume_unwind skips the panic hook: an injected crash
                // should not spray a backtrace over the test output.
                std::panic::resume_unwind(Box::new(format!(
                    "chaos: injected worker panic after {at} records",
                    at = panic_at.unwrap_or(0)
                )));
            }
            if rec.is_global_sync() {
                // The producer issues the ticket right after the push;
                // spin out the tiny window where it is not visible yet.
                let ticket = loop {
                    if let Some(t) = order.ticket(qi, sync_idx) {
                        break t;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                };
                sync_idx += 1;
                while !order.is_turn(ticket) {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
                match rec.try_decode() {
                    Some(ev) => worker.process_event(&ev),
                    None => corrupt += 1,
                }
                order.complete(ticket);
            } else {
                match rec.try_decode() {
                    Some(ev) => worker.process_event(&ev),
                    None => corrupt += 1,
                }
            }
            if let Some(p) = plan {
                for _ in 0..p.consumer_stall_yields(qi, processed) {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        } else if done.load(Ordering::Acquire) && q.is_empty() {
            break;
        } else {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
    (worker.event_count(), worker.format_census(), corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use barracuda_core::RaceClass;

    const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

    fn src(body: &str, params: &str) -> String {
        format!("{HEADER}.visible .entry k({params})\n{{\n{body}\n}}")
    }

    #[test]
    fn racy_counter_detected_in_both_modes() {
        let source = src(
            ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
             ld.param.u64 %rd1, [ctr];\n\
             ld.global.u32 %r1, [%rd1];\n\
             add.s32 %r1, %r1, 1;\n\
             st.global.u32 [%rd1], %r1;\n\
             ret;",
            ".param .u64 ctr",
        );
        for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
            let mut bar = Barracuda::with_config(BarracudaConfig {
                mode,
                ..BarracudaConfig::default()
            });
            let ctr = bar.gpu_mut().malloc(4);
            let a = bar
                .check(&KernelRun {
                    source: &source,
                    kernel: "k",
                    dims: GridDims::new(4u32, 1u32),
                    params: &[ParamValue::Ptr(ctr)],
                })
                .unwrap();
            assert!(a.race_count() > 0, "{mode:?}");
            assert!(a.count_class(RaceClass::InterBlock) > 0, "{mode:?}");
        }
    }

    #[test]
    fn disjoint_writes_clean() {
        let source = src(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
             mov.u32 %r1, %tid.x;\n\
             mov.u32 %r2, %ctaid.x;\n\
             mov.u32 %r3, %ntid.x;\n\
             mad.lo.s32 %r4, %r2, %r3, %r1;\n\
             ld.param.u64 %rd1, [buf];\n\
             mul.wide.s32 %rd2, %r4, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r4;\n\
             ret;",
            ".param .u64 buf",
        );
        let mut bar = Barracuda::new();
        let buf = bar.gpu_mut().malloc(64 * 4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(2u32, 32u32),
                params: &[ParamValue::Ptr(buf)],
            })
            .unwrap();
        assert!(a.is_clean(), "{:?}", a.races());
        assert!(a.stats().records > 0);
        assert!(a.stats().events > 0);
    }

    #[test]
    fn native_run_produces_no_detection() {
        let source = src(
            ".reg .b64 %rd<4>;\nld.param.u64 %rd1, [b];\nst.global.u32 [%rd1], 1;\nret;",
            ".param .u64 b",
        );
        let mut bar = Barracuda::new();
        let b = bar.gpu_mut().malloc(4);
        let stats = bar
            .run_native(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(1u32, 1u32),
                params: &[ParamValue::Ptr(b)],
            })
            .unwrap();
        assert!(stats.instructions > 0);
        assert_eq!(bar.gpu().read_u32(b), 1);
    }

    #[test]
    fn threaded_and_sync_agree() {
        // A mixed workload with barriers and shared memory.
        let source = src(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<8>;\n\
             .shared .align 4 .b8 sm[128];\n\
             mov.u32 %r1, %tid.x;\n\
             mul.wide.s32 %rd2, %r1, 4;\n\
             mov.u64 %rd4, sm;\n\
             add.s64 %rd5, %rd4, %rd2;\n\
             st.shared.u32 [%rd5], %r1;\n\
             bar.sync 0;\n\
             ld.param.u64 %rd1, [buf];\n\
             ld.shared.u32 %r2, [%rd5];\n\
             st.global.u32 [%rd1], %r2;\n\
             ret;",
            ".param .u64 buf",
        );
        let run_with = |mode| {
            let mut bar = Barracuda::with_config(BarracudaConfig {
                mode,
                ..Default::default()
            });
            let buf = bar.gpu_mut().malloc(4);
            bar.check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(2u32, 32u32),
                params: &[ParamValue::Ptr(buf)],
            })
            .unwrap()
            .race_count()
        };
        assert_eq!(
            run_with(DetectionMode::Synchronous),
            run_with(DetectionMode::Threaded)
        );
    }

    #[test]
    fn barrier_divergence_surfaces_as_sim_error() {
        let source = src(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             mov.u32 %r1, %tid.x;\n\
             setp.eq.s32 %p, %r1, 0;\n\
             @%p bra L;\n\
             bar.sync 0;\n\
             L:\n\
             ret;",
            "",
        );
        let mut bar = Barracuda::new();
        let err = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(1u32, 8u32),
                params: &[],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Sim(barracuda_simt::SimError::BarrierDivergence { .. })
        ));
    }

    #[test]
    fn parse_errors_propagate() {
        let mut bar = Barracuda::new();
        let err = bar
            .check(&KernelRun {
                source: "this is not ptx",
                kernel: "k",
                dims: GridDims::new(1u32, 1u32),
                params: &[],
            })
            .unwrap_err();
        assert!(matches!(err, Error::Ptx(_)));
    }

    #[test]
    fn num_queues_follows_sm_count() {
        let cfg = BarracudaConfig::default();
        // 24 SMs × 1.25 = 30 queues (paper: ~1.1–1.5 queues per SM).
        assert_eq!(cfg.num_queues(), 30);
    }

    /// A racy whole-grid counter: every thread of every block increments
    /// `[ctr]` without atomics, producing records on every queue.
    fn racy_counter_src() -> String {
        src(
            ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
             ld.param.u64 %rd1, [ctr];\n\
             ld.global.u32 %r1, [%rd1];\n\
             add.s32 %r1, %r1, 1;\n\
             st.global.u32 [%rd1], %r1;\n\
             ret;",
            ".param .u64 ctr",
        )
    }

    fn chaos_config(plan: FaultPlan) -> BarracudaConfig {
        BarracudaConfig {
            mode: DetectionMode::Threaded,
            gpu: barracuda_simt::GpuConfig {
                num_sms: 2,
                ..Default::default()
            },
            queues_per_sm: 1.0, // → 2 queues / 2 workers
            queue_capacity: 64,
            push_stall_budget: 4_096,
            fault_plan: Some(plan),
            ..BarracudaConfig::default()
        }
    }

    #[test]
    fn injected_worker_panic_degrades_instead_of_aborting() {
        let source = racy_counter_src();
        let plan = FaultPlan::none().with_worker_panic(barracuda_trace::WorkerPanic {
            worker: 0,
            after_records: 5,
        });
        let mut cfg = chaos_config(plan);
        // Small enough that the dead worker's queue overflows its stall
        // budget and sheds records.
        cfg.queue_capacity = 8;
        cfg.push_stall_budget = 512;
        let mut bar = Barracuda::with_config(cfg);
        let ctr = bar.gpu_mut().malloc(4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(32u32, 32u32),
                params: &[ParamValue::Ptr(ctr)],
            })
            .expect("check completes despite the panic");
        assert!(a.is_degraded(), "{:?}", a.diagnostics());
        assert!(a
            .diagnostics()
            .iter()
            .any(|d| matches!(d, barracuda_core::Diagnostic::WorkerPanic { worker: 0, .. })));
        let p = &a.stats().pipeline;
        assert_eq!(p.worker_panics, 1);
        assert_eq!(p.queues, 2);
        assert!(p.per_worker[0].panicked && !p.per_worker[1].panicked);
        // The surviving worker still processed its queue's events.
        assert!(p.per_worker[1].events > 0);
        // The panicked worker's queue backed up and shed records once the
        // stall budget ran out — accounted, not deadlocked.
        assert!(p.records_dropped > 0, "{p:?}");
        assert!(a.diagnostics().iter().any(
            |d| matches!(d, barracuda_core::Diagnostic::LostRecords { dropped, .. } if *dropped > 0)
        ));
    }

    #[test]
    fn full_queue_stall_window_counts_pressure_without_losing_records() {
        let source = racy_counter_src();
        // Aggressive consumer stalls against a tiny queue: producers must
        // wait (bounded), but with a live consumer nothing is lost.
        let plan = FaultPlan::none().with_consumer_stall(barracuda_trace::ConsumerStall {
            every_records: 1,
            yields: 50,
        });
        let mut cfg = chaos_config(plan);
        cfg.queue_capacity = 4;
        cfg.push_stall_budget = 1 << 20;
        let mut bar = Barracuda::with_config(cfg);
        let ctr = bar.gpu_mut().malloc(4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(4u32, 32u32),
                params: &[ParamValue::Ptr(ctr)],
            })
            .unwrap();
        let p = &a.stats().pipeline;
        assert_eq!(
            p.records_dropped, 0,
            "stall-only chaos must not lose records"
        );
        assert_eq!(p.records_corrupt, 0);
        assert_eq!(p.worker_panics, 0);
        assert!(!a.is_degraded());
        assert!(p.queue_high_water >= 1 && p.queue_high_water <= 4, "{p:?}");
        assert!(
            p.producer_stall_cycles > 0,
            "a 4-deep queue must have stalled producers"
        );
        // All produced records were processed.
        assert_eq!(
            a.stats().records,
            p.per_worker.iter().map(|w| w.events).sum::<u64>()
        );
        assert!(
            a.race_count() > 0,
            "the racy counter must still be detected"
        );
    }

    #[test]
    fn injected_drops_and_corruption_are_accounted() {
        let source = racy_counter_src();
        let plan = FaultPlan {
            seed: 9,
            drop_rate: 0.5,
            corrupt_rate: 0.2,
            ..FaultPlan::none()
        };
        let mut bar = Barracuda::with_config(chaos_config(plan));
        let ctr = bar.gpu_mut().malloc(4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(8u32, 32u32),
                params: &[ParamValue::Ptr(ctr)],
            })
            .unwrap();
        let p = &a.stats().pipeline;
        assert!(p.records_dropped > 0);
        assert!(p.records_corrupt > 0);
        assert!(a.is_degraded());
        // Produced = delivered-and-decoded + corrupt + dropped.
        let delivered: u64 = p.per_worker.iter().map(|w| w.events).sum();
        assert_eq!(
            a.stats().records,
            delivered + p.records_corrupt + p.records_dropped
        );
    }

    #[test]
    fn stall_only_chaos_agrees_with_synchronous_verdict() {
        let source = racy_counter_src();
        let race_count = |cfg: BarracudaConfig| {
            let mut bar = Barracuda::with_config(cfg);
            let ctr = bar.gpu_mut().malloc(4);
            bar.check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(4u32, 32u32),
                params: &[ParamValue::Ptr(ctr)],
            })
            .unwrap()
            .race_count()
        };
        let sync = race_count(BarracudaConfig::default());
        for seed in [1u64, 2, 3] {
            assert_eq!(
                race_count(chaos_config(FaultPlan::stalls_only(seed))),
                sync,
                "seed {seed}"
            );
        }
    }
}
