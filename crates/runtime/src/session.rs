//! The detection session: instrument → execute → detect.

use crate::analysis::{Analysis, AnalysisStats};
use crate::Error;
use barracuda_core::{Detector, Worker};
use barracuda_instrument::{instrument_module, InstrumentOptions};
use barracuda_ptx::ast::Module;
use barracuda_simt::{Gpu, GpuConfig, LaunchStats, LoadedKernel, ParamValue, VecSink};
use barracuda_trace::{GridDims, QueueSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// How detector workers consume the device-side queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Collect all records, then process them on the calling thread in
    /// emission order. Deterministic; used by tests.
    Synchronous,
    /// One host thread per queue, draining concurrently with the
    /// simulation — the paper's architecture (§4.3).
    Threaded,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct BarracudaConfig {
    /// Simulator configuration.
    pub gpu: GpuConfig,
    /// Instrumentation options.
    pub instrument: InstrumentOptions,
    /// Queue-consumption mode.
    pub mode: DetectionMode,
    /// Records per queue (the paper reserves a fraction of GPU memory;
    /// capacity expresses the same back-pressure).
    pub queue_capacity: usize,
    /// Queues per streaming multiprocessor; the paper found ~1.1–1.5
    /// optimal (§4.2).
    pub queues_per_sm: f64,
}

impl Default for BarracudaConfig {
    fn default() -> Self {
        BarracudaConfig {
            gpu: GpuConfig::default(),
            instrument: InstrumentOptions::default(),
            mode: DetectionMode::Synchronous,
            queue_capacity: 16 * 1024,
            queues_per_sm: 1.25,
        }
    }
}

impl BarracudaConfig {
    /// Number of queues for this configuration.
    pub fn num_queues(&self) -> usize {
        ((f64::from(self.gpu.num_sms) * self.queues_per_sm).ceil() as usize).max(1)
    }
}

/// One kernel launch to check.
#[derive(Debug, Clone, Copy)]
pub struct KernelRun<'a> {
    /// PTX module source.
    pub source: &'a str,
    /// Entry name.
    pub kernel: &'a str,
    /// Launch dimensions.
    pub dims: GridDims,
    /// Kernel arguments.
    pub params: &'a [ParamValue],
}

/// A BARRACUDA session: owns the simulated GPU and checks kernel launches
/// against it.
#[derive(Debug)]
pub struct Barracuda {
    config: BarracudaConfig,
    gpu: Gpu,
}

impl Default for Barracuda {
    fn default() -> Self {
        Self::new()
    }
}

impl Barracuda {
    /// A session with default configuration (synchronous detection,
    /// sequentially-consistent memory).
    pub fn new() -> Self {
        Self::with_config(BarracudaConfig::default())
    }

    /// A session with explicit configuration.
    pub fn with_config(config: BarracudaConfig) -> Self {
        let gpu = Gpu::new(config.gpu.clone());
        Barracuda { config, gpu }
    }

    /// The simulated device, for allocating and initializing buffers.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// The simulated device (read-only: result readback).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The active configuration.
    pub fn config(&self) -> &BarracudaConfig {
        &self.config
    }

    /// Runs the kernel natively (no instrumentation, no detection) and
    /// returns the launch statistics — the baseline for overhead
    /// measurements (Fig. 10).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure.
    pub fn run_native(&mut self, run: &KernelRun<'_>) -> Result<LaunchStats, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        Ok(self.gpu.launch(&module, run.kernel, run.dims, run.params)?)
    }

    /// Instruments the kernel, runs it with device-side logging, and
    /// performs race detection.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure (including barrier
    /// divergence hangs and timeouts).
    pub fn check(&mut self, run: &KernelRun<'_>) -> Result<Analysis, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        self.check_module(&module, run.kernel, run.dims, run.params)
    }

    /// Warp-size portability sweep: checks the kernel under several
    /// simulated warp sizes and returns each analysis.
    ///
    /// The paper notes that portable CUDA code should not assume a warp
    /// size and that BARRACUDA "could simulate the behavior of
    /// smaller/larger warps to find additional latent bugs" (§3.1) — this
    /// method implements that extension. Warp-synchronous code that is
    /// race-free at the hardware warp size often races at a smaller one,
    /// because lockstep ordering no longer covers the accesses.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or parse failure.
    pub fn check_warp_sizes(
        &mut self,
        run: &KernelRun<'_>,
        warp_sizes: &[u32],
    ) -> Result<Vec<(u32, Analysis)>, Error> {
        let module = barracuda_ptx::parse(run.source)?;
        warp_sizes
            .iter()
            .map(|&ws| {
                let dims = GridDims::with_warp_size(run.dims.grid, run.dims.block, ws);
                let analysis = self.check_module(&module, run.kernel, dims, run.params)?;
                Ok((ws, analysis))
            })
            .collect()
    }

    /// Like [`Barracuda::check`] for an already-parsed module.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on simulation failure.
    pub fn check_module(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        let (instrumented, istats) = instrument_module(module, &self.config.instrument);
        let lk = LoadedKernel::load(&instrumented, kernel)?;
        let shared_size = lk.kernel.shared_size();
        let detector = Detector::new(dims, shared_size);
        let start = Instant::now();

        let (launch, records, events, census) = match self.config.mode {
            DetectionMode::Synchronous => {
                let sink = VecSink::new();
                let launch = self.gpu.launch_loaded(&lk, dims, params, Some(&sink))?;
                let recs = sink.take();
                let nrecs = recs.len() as u64;
                let mut worker = Worker::new(&detector);
                for r in &recs {
                    worker.process_record(r);
                }
                (launch, nrecs, worker.event_count(), worker.format_census())
            }
            DetectionMode::Threaded => {
                let queues = QueueSet::new(self.config.num_queues(), self.config.queue_capacity);
                let done = AtomicBool::new(false);
                let gpu = &mut self.gpu;
                let detector_ref = &detector;
                let queues_ref = &queues;
                let done_ref = &done;
                let (launch_res, worker_stats) = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..queues_ref.len())
                        .map(|qi| {
                            scope.spawn(move || {
                                let q = queues_ref.queue(qi);
                                let mut worker = Worker::new(detector_ref);
                                loop {
                                    if let Some(rec) = q.try_pop() {
                                        worker.process_record(&rec);
                                    } else if done_ref.load(Ordering::Acquire) && q.is_empty() {
                                        break;
                                    } else {
                                        std::hint::spin_loop();
                                        std::thread::yield_now();
                                    }
                                }
                                (worker.event_count(), worker.format_census())
                            })
                        })
                        .collect();
                    let launch_res = gpu.launch_loaded(&lk, dims, params, Some(queues_ref));
                    done.store(true, Ordering::Release);
                    let stats: Vec<(u64, [u64; 4])> =
                        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
                    (launch_res, stats)
                });
                let launch = launch_res?;
                let mut events = 0;
                let mut census = [0u64; 4];
                for (e, c) in worker_stats {
                    events += e;
                    for i in 0..4 {
                        census[i] += c[i];
                    }
                }
                (launch, queues.total_committed(), events, census)
            }
        };

        let stats = AnalysisStats {
            instrument: istats,
            launch,
            records,
            events,
            format_census: census,
            sync_locations: detector.sync_location_count(),
            shadow_pages: detector.shadow_page_count(),
            shadow_bytes: detector.shadow_bytes(),
            detection_time: start.elapsed(),
        };
        Ok(Analysis::new(detector.races().reports(), detector.races().diagnostics(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barracuda_core::RaceClass;

    const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

    fn src(body: &str, params: &str) -> String {
        format!("{HEADER}.visible .entry k({params})\n{{\n{body}\n}}")
    }

    #[test]
    fn racy_counter_detected_in_both_modes() {
        let source = src(
            ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
             ld.param.u64 %rd1, [ctr];\n\
             ld.global.u32 %r1, [%rd1];\n\
             add.s32 %r1, %r1, 1;\n\
             st.global.u32 [%rd1], %r1;\n\
             ret;",
            ".param .u64 ctr",
        );
        for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
            let mut bar = Barracuda::with_config(BarracudaConfig {
                mode,
                ..BarracudaConfig::default()
            });
            let ctr = bar.gpu_mut().malloc(4);
            let a = bar
                .check(&KernelRun {
                    source: &source,
                    kernel: "k",
                    dims: GridDims::new(4u32, 1u32),
                    params: &[ParamValue::Ptr(ctr)],
                })
                .unwrap();
            assert!(a.race_count() > 0, "{mode:?}");
            assert!(a.count_class(RaceClass::InterBlock) > 0, "{mode:?}");
        }
    }

    #[test]
    fn disjoint_writes_clean() {
        let source = src(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
             mov.u32 %r1, %tid.x;\n\
             mov.u32 %r2, %ctaid.x;\n\
             mov.u32 %r3, %ntid.x;\n\
             mad.lo.s32 %r4, %r2, %r3, %r1;\n\
             ld.param.u64 %rd1, [buf];\n\
             mul.wide.s32 %rd2, %r4, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r4;\n\
             ret;",
            ".param .u64 buf",
        );
        let mut bar = Barracuda::new();
        let buf = bar.gpu_mut().malloc(64 * 4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(2u32, 32u32),
                params: &[ParamValue::Ptr(buf)],
            })
            .unwrap();
        assert!(a.is_clean(), "{:?}", a.races());
        assert!(a.stats().records > 0);
        assert!(a.stats().events > 0);
    }

    #[test]
    fn native_run_produces_no_detection() {
        let source = src(
            ".reg .b64 %rd<4>;\nld.param.u64 %rd1, [b];\nst.global.u32 [%rd1], 1;\nret;",
            ".param .u64 b",
        );
        let mut bar = Barracuda::new();
        let b = bar.gpu_mut().malloc(4);
        let stats = bar
            .run_native(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(1u32, 1u32),
                params: &[ParamValue::Ptr(b)],
            })
            .unwrap();
        assert!(stats.instructions > 0);
        assert_eq!(bar.gpu().read_u32(b), 1);
    }

    #[test]
    fn threaded_and_sync_agree() {
        // A mixed workload with barriers and shared memory.
        let source = src(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<8>;\n\
             .shared .align 4 .b8 sm[128];\n\
             mov.u32 %r1, %tid.x;\n\
             mul.wide.s32 %rd2, %r1, 4;\n\
             mov.u64 %rd4, sm;\n\
             add.s64 %rd5, %rd4, %rd2;\n\
             st.shared.u32 [%rd5], %r1;\n\
             bar.sync 0;\n\
             ld.param.u64 %rd1, [buf];\n\
             ld.shared.u32 %r2, [%rd5];\n\
             st.global.u32 [%rd1], %r2;\n\
             ret;",
            ".param .u64 buf",
        );
        let run_with = |mode| {
            let mut bar = Barracuda::with_config(BarracudaConfig { mode, ..Default::default() });
            let buf = bar.gpu_mut().malloc(4);
            bar.check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(2u32, 32u32),
                params: &[ParamValue::Ptr(buf)],
            })
            .unwrap()
            .race_count()
        };
        assert_eq!(
            run_with(DetectionMode::Synchronous),
            run_with(DetectionMode::Threaded)
        );
    }

    #[test]
    fn barrier_divergence_surfaces_as_sim_error() {
        let source = src(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             mov.u32 %r1, %tid.x;\n\
             setp.eq.s32 %p, %r1, 0;\n\
             @%p bra L;\n\
             bar.sync 0;\n\
             L:\n\
             ret;",
            "",
        );
        let mut bar = Barracuda::new();
        let err = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(1u32, 8u32),
                params: &[],
            })
            .unwrap_err();
        assert!(matches!(err, Error::Sim(barracuda_simt::SimError::BarrierDivergence { .. })));
    }

    #[test]
    fn parse_errors_propagate() {
        let mut bar = Barracuda::new();
        let err = bar
            .check(&KernelRun {
                source: "this is not ptx",
                kernel: "k",
                dims: GridDims::new(1u32, 1u32),
                params: &[],
            })
            .unwrap_err();
        assert!(matches!(err, Error::Ptx(_)));
    }

    #[test]
    fn num_queues_follows_sm_count() {
        let cfg = BarracudaConfig::default();
        // 24 SMs × 1.25 = 30 queues (paper: ~1.1–1.5 queues per SM).
        assert_eq!(cfg.num_queues(), 30);
    }
}
