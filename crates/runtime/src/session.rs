//! The one-shot detection session: a thin facade over the persistent
//! [`Engine`].
//!
//! [`Barracuda`] keeps the original instrument → execute → detect API for
//! callers that check a single kernel at a time. Every call routes through
//! an engine's *default stream*, so sequential `check` calls are ordered
//! (never racing with each other) while still sharing the engine's
//! persistent shadow memory, module cache and worker pool. Multi-stream
//! workloads use [`Barracuda::engine_mut`] (or [`Engine`] directly) for
//! `launch_async`, checked memcpys and synchronization.

use crate::analysis::Analysis;
use crate::config::BarracudaConfig;
use crate::engine::Engine;
use crate::Error;
use barracuda_ptx::ast::Module;
use barracuda_simt::{Gpu, LaunchStats, ParamValue};
use barracuda_trace::GridDims;

/// One kernel launch to check.
#[derive(Debug, Clone, Copy)]
pub struct KernelRun<'a> {
    /// PTX module source.
    pub source: &'a str,
    /// Entry name.
    pub kernel: &'a str,
    /// Launch dimensions.
    pub dims: GridDims,
    /// Kernel arguments.
    pub params: &'a [ParamValue],
}

/// A BARRACUDA session: owns the simulated GPU and checks kernel launches
/// against it.
#[derive(Debug)]
pub struct Barracuda {
    engine: Engine,
}

impl Default for Barracuda {
    fn default() -> Self {
        Self::new()
    }
}

impl Barracuda {
    /// A session with default configuration (synchronous detection,
    /// sequentially-consistent memory).
    pub fn new() -> Self {
        Self::with_config(BarracudaConfig::default())
    }

    /// A session with explicit configuration.
    pub fn with_config(config: BarracudaConfig) -> Self {
        Barracuda {
            engine: Engine::with_config(config),
        }
    }

    /// The underlying persistent engine (streams, memcpys, host trace).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The underlying persistent engine, mutably — the door to the
    /// multi-stream host API ([`Engine::launch_async`] and friends).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The simulated device, for allocating and initializing buffers.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        self.engine.gpu_mut()
    }

    /// The simulated device (read-only: result readback).
    pub fn gpu(&self) -> &Gpu {
        self.engine.gpu()
    }

    /// The active configuration.
    pub fn config(&self) -> &BarracudaConfig {
        self.engine.config()
    }

    /// Runs the kernel natively (no instrumentation, no detection) and
    /// returns the launch statistics — the baseline for overhead
    /// measurements (Fig. 10).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure.
    pub fn run_native(&mut self, run: &KernelRun<'_>) -> Result<LaunchStats, Error> {
        self.engine.run_native(run)
    }

    /// Instruments the kernel, runs it with device-side logging, and
    /// performs race detection.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on parse or simulation failure (including barrier
    /// divergence hangs and timeouts).
    pub fn check(&mut self, run: &KernelRun<'_>) -> Result<Analysis, Error> {
        self.engine.check(run)
    }

    /// Like [`Barracuda::check`] for an already-parsed module.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on simulation failure.
    pub fn check_module(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: GridDims,
        params: &[ParamValue],
    ) -> Result<Analysis, Error> {
        self.engine.check_module(module, kernel, dims, params)
    }

    /// Warp-size portability sweep: checks the kernel under several
    /// simulated warp sizes and returns each analysis (see
    /// [`Engine::check_warp_sizes`]).
    ///
    /// # Errors
    ///
    /// Returns the first simulation or parse failure.
    pub fn check_warp_sizes(
        &mut self,
        run: &KernelRun<'_>,
        warp_sizes: &[u32],
    ) -> Result<Vec<(u32, Analysis)>, Error> {
        self.engine.check_warp_sizes(run, warp_sizes)
    }
}
