//! Analysis results returned by a detection run.

use barracuda_core::{Diagnostic, PathStats, RaceClass, RaceReport};
use barracuda_instrument::InstrumentStats;
use barracuda_simt::LaunchStats;
use std::time::Duration;

/// Telemetry of one detector worker (one per queue in threaded mode; a
/// single pseudo-worker in synchronous mode).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Worker index == index of the queue it drained.
    pub worker: usize,
    /// Events this worker processed.
    pub events: u64,
    /// PTVC format census this worker observed
    /// (`[converged, diverged, nested, sparse]`).
    pub format_census: [u64; 4],
    /// Corrupt records this worker skipped.
    pub corrupt_records: u64,
    /// True when the worker died mid-run (its tallies stop at the panic).
    pub panicked: bool,
}

/// Cumulative pipeline telemetry of one stream, engine-lifetime. All
/// counters except `peak_depth` are per-launch deltas summed per stream;
/// `peak_depth` is the engine-lifetime queue high-water observed as of
/// the stream's most recent launch (queue depth maxima are monotonic and
/// cannot be attributed to a single launch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamTelemetry {
    /// Stream id (0 = the default stream).
    pub stream: u32,
    /// Launches this stream has run.
    pub launches: u64,
    /// Device log records its launches produced.
    pub records: u64,
    /// Records shed or fault-dropped during its launches.
    pub dropped: u64,
    /// Producer stall cycles paid during its launches.
    pub stall_cycles: u64,
    /// Engine-lifetime peak queue depth as of this stream's last launch.
    pub peak_depth: u64,
}

/// Queue and worker telemetry of the host-side pipeline (§4.2–4.3): the
/// observability layer for backpressure, degradation and load balance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Number of GPU→host queues (0 in synchronous mode).
    pub queues: usize,
    /// Peak committed-but-unread depth across all queues.
    pub queue_high_water: u64,
    /// Producer spin-yield cycles spent waiting for space or for earlier
    /// commits (queue pressure).
    pub producer_stall_cycles: u64,
    /// Records shed by bounded-stall backpressure.
    pub records_dropped: u64,
    /// Records that failed to decode on the host side.
    pub records_corrupt: u64,
    /// Workers that panicked mid-run.
    pub worker_panics: u64,
    /// Per-worker event/census tallies, ordered by worker index.
    pub per_worker: Vec<WorkerTelemetry>,
    /// Per-stream cumulative depth/drop counters, ordered by stream id
    /// (empty in synchronous mode and in one-shot sessions that never
    /// created a stream beyond the default).
    pub per_stream: Vec<StreamTelemetry>,
}

impl PipelineStats {
    /// True when every produced record reached a live worker and decoded.
    pub fn is_lossless(&self) -> bool {
        self.records_dropped == 0 && self.records_corrupt == 0 && self.worker_panics == 0
    }
}

/// Aggregate statistics of one detection run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Instrumentation statistics (Fig. 9 inputs).
    pub instrument: InstrumentStats,
    /// Simulator launch statistics for the instrumented run.
    pub launch: LaunchStats,
    /// Log records produced by the device side.
    pub records: u64,
    /// Events processed by the host-side detector.
    pub events: u64,
    /// PTVC format census at access events:
    /// `[converged, diverged, nested, sparse]` (Fig. 7 distribution).
    pub format_census: [u64; 4],
    /// Distinct synchronization locations observed.
    pub sync_locations: usize,
    /// Global shadow pages allocated.
    pub shadow_pages: usize,
    /// Approximate global shadow metadata bytes (~32× tracked bytes, Fig. 8).
    pub shadow_bytes: u64,
    /// Shadow fast-path vs slow-path hit counters, merged across all
    /// detector workers of the launch.
    pub shadow_paths: PathStats,
    /// Wall-clock time of the instrumented, detected run.
    pub detection_time: Duration,
    /// Queue and worker telemetry of the detection pipeline.
    pub pipeline: PipelineStats,
}

/// The result of checking one kernel launch.
#[derive(Debug, Clone)]
pub struct Analysis {
    races: Vec<RaceReport>,
    diagnostics: Vec<Diagnostic>,
    stats: AnalysisStats,
}

impl Analysis {
    pub(crate) fn new(
        races: Vec<RaceReport>,
        diagnostics: Vec<Diagnostic>,
        stats: AnalysisStats,
    ) -> Self {
        Analysis {
            races,
            diagnostics,
            stats,
        }
    }

    /// Number of distinct racing locations.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    /// True when no races and no diagnostics were found.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.diagnostics.is_empty()
    }

    /// The race reports (one per distinct location).
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Barrier-divergence and other diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when the pipeline degraded mid-run (a worker panicked or
    /// records were lost): the verdict is then a sound lower bound, not a
    /// complete analysis.
    pub fn is_degraded(&self) -> bool {
        self.diagnostics.iter().any(|d| {
            matches!(
                d,
                Diagnostic::WorkerPanic { .. } | Diagnostic::LostRecords { .. }
            )
        })
    }

    /// Run statistics.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Count of races in the given class.
    pub fn count_class(&self, class: RaceClass) -> usize {
        self.races.iter().filter(|r| r.class == class).count()
    }

    /// `(shared, global)` counts (the Table 1 "races found" split).
    pub fn space_counts(&self) -> (usize, usize) {
        let shared = self
            .races
            .iter()
            .filter(|r| r.space == barracuda_trace::MemSpace::Shared)
            .count();
        (shared, self.races.len() - shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barracuda_core::AccessType;
    use barracuda_trace::{MemSpace, Tid};

    fn race(space: MemSpace, class: RaceClass) -> RaceReport {
        RaceReport {
            space,
            block: None,
            addr: 0,
            current: (Tid(0), AccessType::Write),
            previous: (Tid(1), AccessType::Write),
            class,
        }
    }

    #[test]
    fn analysis_accessors() {
        let a = Analysis::new(
            vec![
                race(MemSpace::Global, RaceClass::InterBlock),
                race(MemSpace::Shared, RaceClass::IntraWarp),
            ],
            vec![],
            AnalysisStats::default(),
        );
        assert_eq!(a.race_count(), 2);
        assert!(!a.is_clean());
        assert_eq!(a.count_class(RaceClass::InterBlock), 1);
        assert_eq!(a.space_counts(), (1, 1));
    }

    #[test]
    fn clean_analysis() {
        let a = Analysis::new(vec![], vec![], AnalysisStats::default());
        assert!(a.is_clean());
        assert_eq!(a.race_count(), 0);
    }
}
