//! BARRACUDA: binary-level dynamic race detection for CUDA (PTX) programs.
//!
//! This facade crate wires the full pipeline of the paper together
//! (Fig. 5): PTX is parsed and **instrumented** (`barracuda-instrument`),
//! executed on the **SIMT simulator** (`barracuda-simt`) whose device-side
//! logger streams fixed-size records through lock-free **queues**
//! (`barracuda-trace`) to host-side **detector** workers
//! (`barracuda-core`).
//!
//! The paper injects itself into real CUDA processes via `LD_PRELOAD` and
//! reloads instrumented PTX through the driver; here the same
//! parse → analyze → rewrite → reload pipeline runs against the simulator
//! (see `DESIGN.md` for the substitution table).
//!
//! # Quick start
//!
//! ```
//! use barracuda::{Barracuda, KernelRun};
//! use barracuda_simt::ParamValue;
//! use barracuda_trace::GridDims;
//!
//! # fn main() -> Result<(), barracuda::Error> {
//! // Two blocks increment the same global counter without atomics.
//! let ptx = r#"
//!     .version 4.3
//!     .target sm_35
//!     .address_size 64
//!     .visible .entry racy(.param .u64 ctr)
//!     {
//!         .reg .b32 %r<4>;
//!         .reg .b64 %rd<4>;
//!         ld.param.u64 %rd1, [ctr];
//!         ld.global.u32 %r1, [%rd1];
//!         add.s32 %r1, %r1, 1;
//!         st.global.u32 [%rd1], %r1;
//!         ret;
//!     }
//! "#;
//! let mut bar = Barracuda::new();
//! let ctr = bar.gpu_mut().malloc(4);
//! let analysis = bar.check(&KernelRun {
//!     source: ptx,
//!     kernel: "racy",
//!     dims: GridDims::new(2u32, 1u32),
//!     params: &[ParamValue::Ptr(ctr)],
//! })?;
//! assert!(analysis.race_count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod analysis;
mod config;
mod device;
mod engine;
pub mod exitcode;
mod session;
mod sink;
pub mod statsjson;

pub use analysis::{Analysis, AnalysisStats, PipelineStats, StreamTelemetry, WorkerTelemetry};
pub use config::{BarracudaConfig, DetectionMode};
pub use device::StreamId;
pub use engine::{Engine, LaunchSummary};
pub use session::{Barracuda, KernelRun};

pub use barracuda_core::{Diagnostic, RaceClass, RaceReport};
pub use barracuda_instrument::{InstrumentOptions, InstrumentStats};
pub use barracuda_simt::{DevicePtr, GpuConfig, MemoryModel, ParamValue, SchedPolicy, SimError};
pub use barracuda_trace::{CancelToken, ConsumerStall, FaultPlan, GridDims, HostOp, WorkerPanic};

use std::fmt;

/// Top-level error: PTX parsing or simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// PTX lexing/parsing/validation failure.
    Ptx(barracuda_ptx::PtxError),
    /// Simulator fault (barrier divergence, invalid access, timeout, …).
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Ptx(e) => write!(f, "{e}"),
            Error::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Ptx(e) => Some(e),
            Error::Sim(e) => Some(e),
        }
    }
}

impl From<barracuda_ptx::PtxError> for Error {
    fn from(e: barracuda_ptx::PtxError) -> Self {
        Error::Ptx(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}
