//! Machine-readable analysis output (`barracuda check --stats-json`).
//!
//! Emits one JSON object per analysis with the verdict, race/diagnostic
//! breakdown and the full [`crate::AnalysisStats`] including the pipeline
//! telemetry (queue high-water marks, producer stall cycles, per-worker
//! event counts, drop counts). The build environment has no registry
//! access, so — in the same spirit as the `vendor/` shims — serialization
//! is hand-rolled here and paired with [`parse`], a minimal JSON reader
//! used by the round-trip tests and available to downstream tooling.

use crate::analysis::Analysis;
use barracuda_core::{Diagnostic, RaceClass};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset the stats schema uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; the schema only emits integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-ordered for deterministic comparison.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes one analysis to the stats-JSON schema.
pub fn to_json(a: &Analysis) -> String {
    let mut s = String::with_capacity(1024);
    let verdict = if a.race_count() > 0 {
        "race"
    } else if a.diagnostics().is_empty() {
        "clean"
    } else {
        "diagnostic"
    };
    let (shared, global) = a.space_counts();
    let st = a.stats();
    let p = &st.pipeline;
    let _ = write!(
        s,
        "{{\"verdict\":\"{verdict}\",\"degraded\":{},\"races\":{},\
         \"race_classes\":{{\"intra_warp\":{},\"divergence\":{},\"intra_block\":{},\
         \"inter_block\":{},\"inter_kernel\":{},\"host_device\":{}}},\
         \"spaces\":{{\"shared\":{shared},\"global\":{global}}}",
        a.is_degraded(),
        a.race_count(),
        a.count_class(RaceClass::IntraWarp),
        a.count_class(RaceClass::Divergence),
        a.count_class(RaceClass::IntraBlock),
        a.count_class(RaceClass::InterBlock),
        a.count_class(RaceClass::InterKernel),
        a.count_class(RaceClass::HostDevice),
    );
    s.push_str(",\"diagnostics\":[");
    for (i, d) in a.diagnostics().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match d {
            Diagnostic::BarrierDivergence { block } => {
                let _ = write!(s, "{{\"kind\":\"barrier_divergence\",\"block\":{block}}}");
            }
            Diagnostic::WorkerPanic { worker, message } => {
                let _ = write!(
                    s,
                    "{{\"kind\":\"worker_panic\",\"worker\":{worker},\"message\":"
                );
                escape(message, &mut s);
                s.push('}');
            }
            Diagnostic::LostRecords { dropped, corrupt } => {
                let _ = write!(
                    s,
                    "{{\"kind\":\"lost_records\",\"dropped\":{dropped},\"corrupt\":{corrupt}}}"
                );
            }
        }
    }
    let _ = write!(
        s,
        "],\"stats\":{{\"records\":{},\"events\":{},\
         \"format_census\":[{},{},{},{}],\
         \"ptvc_histogram\":{{\"converged\":{},\"diverged\":{},\
         \"nested_diverged\":{},\"sparse_vc\":{}}},\
         \"sync_locations\":{},\"shadow_pages\":{},\
         \"shadow_bytes\":{},\"detection_time_us\":{},\
         \"launch\":{{\"instructions\":{},\"barriers\":{}}},\
         \"instrument\":{{\"static_instructions\":{},\"instrumented_instructions\":{},\
         \"log_calls\":{},\"pruned\":{}}}",
        st.records,
        st.events,
        st.format_census[0],
        st.format_census[1],
        st.format_census[2],
        st.format_census[3],
        st.format_census[0],
        st.format_census[1],
        st.format_census[2],
        st.format_census[3],
        st.sync_locations,
        st.shadow_pages,
        st.shadow_bytes,
        st.detection_time.as_micros(),
        st.launch.instructions,
        st.launch.barriers,
        st.instrument.static_instructions,
        st.instrument.instrumented_instructions,
        st.instrument.log_calls,
        st.instrument.pruned,
    );
    let sp = &st.shadow_paths;
    let _ = write!(
        s,
        ",\"shadow_fast_path\":{{\"batched_records\":{},\"slow_records\":{},\
         \"page_locks\":{},\"word_merges\":{},\"word_fallbacks\":{},\
         \"uniform_records\":{},\"cell_checks\":{}}}",
        sp.batched_records,
        sp.slow_records,
        sp.page_locks,
        sp.word_merges,
        sp.word_fallbacks,
        sp.uniform_records,
        sp.cell_checks,
    );
    let _ = write!(
        s,
        ",\"pipeline\":{{\"queues\":{},\"queue_high_water\":{},\
         \"producer_stall_cycles\":{},\"records_dropped\":{},\"records_corrupt\":{},\
         \"worker_panics\":{},\"per_worker\":[",
        p.queues,
        p.queue_high_water,
        p.producer_stall_cycles,
        p.records_dropped,
        p.records_corrupt,
        p.worker_panics,
    );
    for (i, w) in p.per_worker.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"worker\":{},\"events\":{},\"format_census\":[{},{},{},{}],\
             \"corrupt_records\":{},\"panicked\":{}}}",
            w.worker,
            w.events,
            w.format_census[0],
            w.format_census[1],
            w.format_census[2],
            w.format_census[3],
            w.corrupt_records,
            w.panicked,
        );
    }
    s.push_str("],\"per_stream\":[");
    for (i, t) in p.per_stream.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"stream\":{},\"launches\":{},\"records\":{},\"dropped\":{},\
             \"stall_cycles\":{},\"peak_depth\":{}}}",
            t.stream, t.launches, t.records, t.dropped, t.stall_cycles, t.peak_depth,
        );
    }
    s.push_str("]}}}");
    s
}

/// Serializes an engine's per-launch summaries as a JSON array (the
/// `launches` field of `--stats-json` output): launch order, stream,
/// kernel, and the races each launch exposed — including inter-kernel and
/// host-device races only a persistent engine can see.
pub fn launches_to_json(launches: &[crate::engine::LaunchSummary]) -> String {
    let mut s = String::with_capacity(64 * launches.len() + 2);
    s.push('[');
    for (i, l) in launches.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"epoch\":{},\"stream\":{},\"kernel\":",
            l.epoch, l.stream
        );
        escape(&l.kernel, &mut s);
        let _ = write!(
            s,
            ",\"races\":{},\"records\":{},\"events\":{}}}",
            l.races, l.records, l.events
        );
    }
    s.push(']');
    s
}

/// [`to_json`] plus the engine's per-launch `launches` array — the full
/// `--stats-json` document of a persistent-engine run.
pub fn to_json_with_launches(a: &Analysis, launches: &[crate::engine::LaunchSummary]) -> String {
    let mut s = to_json(a);
    let closing = s.pop();
    debug_assert_eq!(closing, Some('}'));
    s.push_str(",\"launches\":");
    s.push_str(&launches_to_json(launches));
    s.push('}');
    s
}

/// Parses a JSON document (the subset [`to_json`] emits: objects, arrays,
/// strings with basic escapes, numbers, booleans, null).
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a char boundary).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty char")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        m.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisStats, PipelineStats, StreamTelemetry, WorkerTelemetry};
    use crate::Analysis;
    use barracuda_core::{AccessType, PathStats, RaceReport};
    use barracuda_trace::{MemSpace, Tid};

    fn sample_analysis() -> Analysis {
        let race = RaceReport {
            space: MemSpace::Global,
            block: None,
            addr: 0x40,
            current: (Tid(1), AccessType::Write),
            previous: (Tid(9), AccessType::Read),
            class: RaceClass::InterBlock,
        };
        let stats = AnalysisStats {
            records: 128,
            events: 120,
            format_census: [100, 12, 5, 3],
            sync_locations: 2,
            shadow_pages: 1,
            shadow_bytes: 4096,
            shadow_paths: PathStats {
                batched_records: 40,
                slow_records: 1,
                page_locks: 44,
                word_merges: 30,
                word_fallbacks: 3,
                uniform_records: 38,
                cell_checks: 55,
            },
            pipeline: PipelineStats {
                queues: 4,
                queue_high_water: 37,
                producer_stall_cycles: 991,
                records_dropped: 6,
                records_corrupt: 2,
                worker_panics: 1,
                per_worker: vec![
                    WorkerTelemetry {
                        worker: 0,
                        events: 120,
                        format_census: [100, 12, 5, 3],
                        corrupt_records: 2,
                        panicked: false,
                    },
                    WorkerTelemetry {
                        worker: 1,
                        panicked: true,
                        ..WorkerTelemetry::default()
                    },
                ],
                per_stream: vec![StreamTelemetry {
                    stream: 0,
                    launches: 2,
                    records: 128,
                    dropped: 6,
                    stall_cycles: 991,
                    peak_depth: 37,
                }],
            },
            ..AnalysisStats::default()
        };
        Analysis::new(
            vec![race],
            vec![
                Diagnostic::WorkerPanic {
                    worker: 1,
                    message: "chaos \"quoted\"".to_string(),
                },
                Diagnostic::LostRecords {
                    dropped: 6,
                    corrupt: 2,
                },
            ],
            stats,
        )
    }

    #[test]
    fn emitted_json_parses() {
        let j = parse(&to_json(&sample_analysis())).expect("valid json");
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("race"));
        assert_eq!(j.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(j.get("races").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn schema_round_trips_every_field() {
        let a = sample_analysis();
        let j = parse(&to_json(&a)).unwrap();
        let stats = j.get("stats").expect("stats object");
        assert_eq!(stats.get("records").and_then(Json::as_u64), Some(128));
        assert_eq!(stats.get("events").and_then(Json::as_u64), Some(120));
        let census = stats.get("format_census").and_then(Json::as_arr).unwrap();
        let census: Vec<u64> = census.iter().map(|c| c.as_u64().unwrap()).collect();
        assert_eq!(census, vec![100, 12, 5, 3]);
        let hist = stats.get("ptvc_histogram").expect("ptvc_histogram object");
        assert_eq!(hist.get("converged").and_then(Json::as_u64), Some(100));
        assert_eq!(hist.get("diverged").and_then(Json::as_u64), Some(12));
        assert_eq!(hist.get("nested_diverged").and_then(Json::as_u64), Some(5));
        assert_eq!(hist.get("sparse_vc").and_then(Json::as_u64), Some(3));
        let sp = stats
            .get("shadow_fast_path")
            .expect("shadow_fast_path object");
        assert_eq!(sp.get("batched_records").and_then(Json::as_u64), Some(40));
        assert_eq!(sp.get("slow_records").and_then(Json::as_u64), Some(1));
        assert_eq!(sp.get("page_locks").and_then(Json::as_u64), Some(44));
        assert_eq!(sp.get("word_merges").and_then(Json::as_u64), Some(30));
        assert_eq!(sp.get("word_fallbacks").and_then(Json::as_u64), Some(3));
        assert_eq!(sp.get("uniform_records").and_then(Json::as_u64), Some(38));
        assert_eq!(sp.get("cell_checks").and_then(Json::as_u64), Some(55));
        let p = stats.get("pipeline").expect("pipeline object");
        assert_eq!(p.get("queues").and_then(Json::as_u64), Some(4));
        assert_eq!(p.get("queue_high_water").and_then(Json::as_u64), Some(37));
        assert_eq!(
            p.get("producer_stall_cycles").and_then(Json::as_u64),
            Some(991)
        );
        assert_eq!(p.get("records_dropped").and_then(Json::as_u64), Some(6));
        assert_eq!(p.get("records_corrupt").and_then(Json::as_u64), Some(2));
        assert_eq!(p.get("worker_panics").and_then(Json::as_u64), Some(1));
        let workers = p.get("per_worker").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].get("events").and_then(Json::as_u64), Some(120));
        assert_eq!(workers[1].get("panicked"), Some(&Json::Bool(true)));
        let streams = p.get("per_stream").and_then(Json::as_arr).unwrap();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].get("stream").and_then(Json::as_u64), Some(0));
        assert_eq!(streams[0].get("launches").and_then(Json::as_u64), Some(2));
        assert_eq!(streams[0].get("dropped").and_then(Json::as_u64), Some(6));
        assert_eq!(
            streams[0].get("peak_depth").and_then(Json::as_u64),
            Some(37)
        );
        let diags = j.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(
            diags[0].get("kind").and_then(Json::as_str),
            Some("worker_panic")
        );
        assert_eq!(
            diags[0].get("message").and_then(Json::as_str),
            Some("chaos \"quoted\""),
            "string escapes must round-trip"
        );
        assert_eq!(
            diags[1].get("kind").and_then(Json::as_str),
            Some("lost_records")
        );
        assert_eq!(diags[1].get("dropped").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn race_classes_include_engine_classes() {
        let j = parse(&to_json(&sample_analysis())).unwrap();
        let classes = j.get("race_classes").expect("race_classes object");
        assert_eq!(classes.get("inter_kernel").and_then(Json::as_u64), Some(0));
        assert_eq!(classes.get("host_device").and_then(Json::as_u64), Some(0));
        assert_eq!(classes.get("inter_block").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn launches_array_round_trips() {
        use crate::engine::LaunchSummary;
        let launches = vec![
            LaunchSummary {
                epoch: 0,
                stream: 0,
                kernel: "k\"q\"".to_string(),
                races: 2,
                records: 100,
                events: 99,
            },
            LaunchSummary {
                epoch: 1,
                stream: 3,
                kernel: "other".to_string(),
                races: 0,
                records: 5,
                events: 5,
            },
        ];
        let j = parse(&launches_to_json(&launches)).expect("valid json");
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("kernel").and_then(Json::as_str), Some("k\"q\""));
        assert_eq!(arr[0].get("races").and_then(Json::as_u64), Some(2));
        assert_eq!(arr[1].get("stream").and_then(Json::as_u64), Some(3));
        assert_eq!(arr[1].get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(parse(&launches_to_json(&[])).unwrap(), Json::Arr(vec![]));

        let doc = parse(&to_json_with_launches(&sample_analysis(), &launches)).unwrap();
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("race"));
        assert_eq!(
            doc.get("launches")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn parser_handles_nested_structures_and_escapes() {
        let j = parse(r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":-3.5,"e":true}"#).unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_arr).unwrap()[2]
                .get("b")
                .and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(j.get("c"), Some(&Json::Null));
        assert_eq!(j.get("d"), Some(&Json::Num(-3.5)));
        assert_eq!(j.get("e"), Some(&Json::Bool(true)));
    }
}
