//! Pipeline plumbing between the simulated device and the detector: the
//! producer-side record sink, the consumer worker loop, and the host-op
//! buffer used by the CUDA-style host API.

use barracuda_core::{Detector, PathStats, Worker};
use barracuda_simt::EventSink;
use barracuda_trace::route::{route_class, split_global_access, RouteClass, SeqStamper};
use barracuda_trace::{FaultPlan, HostOp, PushOutcome, QueueSet, Record, SyncOrder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Producer-side state of the sharded (page-hash) routing mode.
struct ShardedRouting {
    /// Per-warp plain-access sequence stamps (the fast-forward trailer).
    stamper: Mutex<SeqStamper>,
    /// Held across *stamp → push-to-every-queue → issue ticket* for sync
    /// records, so each queue's FIFO receives ticketed sync records in
    /// ticket-issue order — the consumer pairs the k-th sync record it
    /// pops with the k-th ticket naming its queue, which deadlocks if two
    /// broadcasts can cross on the way in.
    broadcast: Mutex<()>,
}

/// The producer-side sink of the threaded pipeline: routes records to
/// their block's queue with bounded-stall backpressure, and applies the
/// producer-side faults of a [`FaultPlan`] (drops, corruption).
///
/// In sharded mode ([`BarracudaConfig::sharded_routing`]) records route
/// by *shadow-page hash* instead: plain global accesses split into
/// page-local fragments, each sent to the page's owner queue; plain
/// shared accesses go to their block's queue; sync and control records
/// are replicated to every queue so each worker keeps an exact copy of
/// every warp's clock state.
///
/// A queue whose bounded push ever times out is marked *wedged*: its
/// consumer is presumed dead or badly stalled, and later records for it
/// pay at most one fast full-check instead of the whole stall budget
/// again, so a single dead worker cannot slow the simulation to a crawl.
///
/// [`BarracudaConfig::sharded_routing`]: crate::BarracudaConfig::sharded_routing
pub(crate) struct PipelineSink<'a> {
    queues: &'a QueueSet,
    plan: Option<&'a FaultPlan>,
    stall_budget: u64,
    /// Launch epoch, mixed into the queue-affinity hash so consecutive
    /// launches spread their blocks across different queues (per-stream
    /// fairness under the serving workload; see [`QueueSet::index_for`]).
    epoch: u32,
    /// Cross-queue ordering of synchronization records: a ticket is
    /// issued for every sync record that actually enqueues, so workers
    /// apply them in emission order.
    order: &'a SyncOrder,
    /// `Some` when page-hash routing is on.
    sharded: Option<ShardedRouting>,
    /// Per-queue producer sequence numbers (fault-decision coordinates).
    seq: Vec<AtomicU64>,
    /// Queues that exhausted a stall budget once.
    wedged: Vec<AtomicBool>,
    /// Records dropped by fault injection (not by backpressure).
    injected_drops: AtomicU64,
    /// Records lost (shed *or* injected), indexed by [`Record::slot`] —
    /// the per-launch drop attribution of a co-resident group. Sized for
    /// every possible slot byte, so no bounds check on the hot drop path.
    dropped_per_slot: Vec<AtomicU64>,
}

impl<'a> PipelineSink<'a> {
    pub(crate) fn new(
        queues: &'a QueueSet,
        plan: Option<&'a FaultPlan>,
        stall_budget: u64,
        order: &'a SyncOrder,
        epoch: u32,
        sharded: bool,
    ) -> Self {
        PipelineSink {
            queues,
            plan,
            stall_budget,
            epoch,
            order,
            sharded: sharded.then(|| ShardedRouting {
                stamper: Mutex::new(SeqStamper::new()),
                broadcast: Mutex::new(()),
            }),
            seq: (0..queues.len()).map(|_| AtomicU64::new(0)).collect(),
            wedged: (0..queues.len()).map(|_| AtomicBool::new(false)).collect(),
            injected_drops: AtomicU64::new(0),
            dropped_per_slot: (0..=usize::from(u8::MAX)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records dropped by fault injection so far.
    pub(crate) fn injected_drops(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
    }

    /// Records lost (shed or injected) whose [`Record::slot`] was `slot`.
    pub(crate) fn dropped_for_slot(&self, slot: u8) -> u64 {
        self.dropped_per_slot[usize::from(slot)].load(Ordering::Relaxed)
    }

    /// Applies the fault plan and bounded-stall backpressure, then pushes
    /// to queue `qi`. Returns the record as pushed (kind possibly
    /// corrupted), or `None` when it was dropped — injected or shed.
    fn try_push(&self, qi: usize, mut record: Record) -> Option<Record> {
        if let Some(plan) = self.plan {
            let seq = self.seq[qi].fetch_add(1, Ordering::Relaxed);
            if plan.should_drop(qi as u64, seq) {
                self.injected_drops.fetch_add(1, Ordering::Relaxed);
                self.dropped_per_slot[usize::from(record.slot)].fetch_add(1, Ordering::Relaxed);
                return None;
            }
            if let Some(kind) = plan.corrupt_kind(qi as u64, seq) {
                record.kind = kind;
            }
        }
        let q = self.queues.queue(qi);
        // A wedged queue gets a zero budget: drop immediately when full.
        let budget = if self.wedged[qi].load(Ordering::Relaxed) {
            0
        } else {
            self.stall_budget
        };
        if q.push_bounded(record, budget) == PushOutcome::Dropped {
            self.wedged[qi].store(true, Ordering::Relaxed);
            self.dropped_per_slot[usize::from(record.slot)].fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(record)
    }

    /// Sharded emission: stamp the fast-forward trailer, then route by
    /// class (see the type docs).
    fn emit_sharded(&self, sh: &ShardedRouting, block: u64, mut record: Record) {
        let n = self.queues.len();
        sh.stamper
            .lock()
            .expect("seq stamper poisoned")
            .stamp(&mut record);
        match route_class(&record) {
            RouteClass::PlainShared => {
                let _ = self.try_push(self.queues.index_for(self.epoch, block), record);
            }
            RouteClass::PlainGlobal => {
                split_global_access(&record, n, |qi, frag| {
                    let _ = self.try_push(qi, frag);
                });
            }
            RouteClass::Sync => {
                // All pushes and the ticket are one atomic step w.r.t.
                // other sync broadcasts (see `ShardedRouting::broadcast`).
                let _b = sh.broadcast.lock().expect("broadcast lock poisoned");
                // A copy is a ticket member iff it enqueued *and* still
                // classifies as sync after per-queue corruption — exactly
                // the test its consumer applies when pairing tickets.
                let mask: Vec<bool> = (0..n)
                    .map(|qi| self.try_push(qi, record).is_some_and(|r| r.is_sync()))
                    .collect();
                self.order.issue_broadcast(&mask);
            }
            RouteClass::Control => {
                for qi in 0..n {
                    let _ = self.try_push(qi, record);
                }
            }
        }
    }
}

impl EventSink for PipelineSink<'_> {
    fn emit(&self, block: u64, record: Record) {
        if let Some(sh) = &self.sharded {
            self.emit_sharded(sh, block, record);
            return;
        }
        let qi = self.queues.index_for(self.epoch, block);
        if let Some(rec) = self.try_push(qi, record) {
            if rec.is_global_sync() {
                // Only records that made it into a queue get a ticket — a
                // ticket must never wait on a record that is not coming.
                self.order.issue(qi);
            }
        }
    }
}

/// What one finished detector worker tallied.
#[derive(Debug, Default)]
pub(crate) struct WorkerTallies {
    /// Events applied across every slot's detector.
    pub(crate) events: u64,
    /// Census of PTVC formats observed at access events.
    pub(crate) census: [u64; 4],
    /// Corrupt records skipped (undecodable kind or out-of-range slot).
    pub(crate) corrupt: u64,
    /// Shadow fast-path/slow-path hit counters, merged across slots.
    pub(crate) paths: PathStats,
    /// Events applied per group slot — one entry per detector handed to
    /// the worker (a single entry for eager launches). Sums to `events`.
    pub(crate) slot_events: Vec<u64>,
}

/// What one detector worker came back with.
pub(crate) enum WorkerOutcome {
    /// The worker drained its queue; its tallies.
    Finished(WorkerTallies),
    /// The worker panicked; the payload's message.
    Panicked(String),
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The worker loop of one queue consumer: drains records until the launch
/// finishes and the queue is empty, applying the consumer-side faults of
/// the plan (periodic stalls, an injected panic at the Nth record) and
/// skipping records that fail to decode.
///
/// Global-sync records go through the [`SyncOrder`]: the worker waits for
/// the record's ticket to come up, applies it, and completes the ticket,
/// so releases and acquires on different queues hit the detector's
/// synchronization map in device emission order no matter how consumers
/// are scheduled (or chaos-stalled).
///
/// In sharded mode every sync record is broadcast to every queue and
/// ticketed once with per-queue membership: the worker pairs the k-th
/// sync record it pops with the k-th ticket naming its queue, waits for
/// its *sub-turn* (sub-turns of one ticket ascend by queue index),
/// applies the record — every replica performs the full sync-map
/// transaction; the writes are idempotent because replicas hold
/// identical clock state — and completes the sub-turn. All other records
/// go through [`Worker::process_sharded_record`] directly.
///
/// The loop polls the cancel token between records (and inside every
/// spin-wait, where a cancelled producer would otherwise leave it
/// spinning forever). A cancelled worker marks its queue dead in the sync
/// order before leaving so surviving workers are not wedged on its
/// tickets, then returns its partial tallies; the launch itself fails
/// with `Cancelled`, so the partial state is drained by the engine.
///
/// `dets` holds one detector per group slot: every record dispatches to
/// the worker of its [`Record::slot`] byte (eager launches pass a single
/// detector and every record carries slot 0). Per-slot workers are
/// created lazily — a slot whose records all routed elsewhere costs
/// nothing. A record whose slot byte is out of range counts as corrupt,
/// but a *sync* record still pairs and completes its ticket so the
/// cross-queue ordering never wedges on it.
#[allow(clippy::too_many_arguments)] // one call site, in WorkerPool::spawn
pub(crate) fn drain_queue(
    qi: usize,
    nworkers: usize,
    queues: &QueueSet,
    dets: &[Arc<Detector>],
    plan: Option<&FaultPlan>,
    done: &AtomicBool,
    order: &SyncOrder,
    sharded: bool,
) -> WorkerTallies {
    let q = queues.queue(qi);
    // Every detector of a group shares the engine's cancel token, so
    // polling any one of them observes cancellation for the whole group.
    let cancel = dets.first().expect("at least one detector per launch");
    let mut workers: Vec<Option<Worker<'_>>> = (0..dets.len()).map(|_| None).collect();
    let mut processed = 0u64;
    let mut corrupt = 0u64;
    let mut sync_idx = 0usize;
    let panic_at = plan.and_then(|p| p.panic_after(qi, nworkers));
    'drain: loop {
        if cancel.is_cancelled() {
            order.mark_dead(qi);
            break 'drain;
        }
        if let Some(rec) = q.try_pop() {
            processed += 1;
            if panic_at.is_some_and(|at| processed > at) {
                // resume_unwind skips the panic hook: an injected crash
                // should not spray a backtrace over the test output.
                std::panic::resume_unwind(Box::new(format!(
                    "chaos: injected worker panic after {at} records",
                    at = panic_at.unwrap_or(0)
                )));
            }
            let si = usize::from(rec.slot);
            let known_slot = si < workers.len();
            if sharded {
                if rec.is_sync() {
                    // Same pairing as the unified branch below, but on the
                    // broadcast ticket's per-queue sub-turn.
                    let ticket = loop {
                        if let Some(t) = order.ticket(qi, sync_idx) {
                            break t;
                        }
                        if cancel.is_cancelled() {
                            order.mark_dead(qi);
                            break 'drain;
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    };
                    sync_idx += 1;
                    while !order.is_sub_turn(ticket, qi) {
                        if cancel.is_cancelled() {
                            order.mark_dead(qi);
                            break 'drain;
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                    if !known_slot
                        || !slot_worker(&mut workers, dets, si, qi, nworkers, sharded)
                            .process_sharded_record(&rec)
                    {
                        corrupt += 1;
                    }
                    order.complete_sub(ticket, qi);
                } else if !known_slot
                    || !slot_worker(&mut workers, dets, si, qi, nworkers, sharded)
                        .process_sharded_record(&rec)
                {
                    corrupt += 1;
                }
            } else if rec.is_global_sync() {
                // The producer issues the ticket right after the push;
                // spin out the tiny window where it is not visible yet.
                let ticket = loop {
                    if let Some(t) = order.ticket(qi, sync_idx) {
                        break t;
                    }
                    if cancel.is_cancelled() {
                        order.mark_dead(qi);
                        break 'drain;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                };
                sync_idx += 1;
                while !order.is_turn(ticket) {
                    if cancel.is_cancelled() {
                        // mark_dead skips the held ticket too, so the
                        // turn we abandon cannot wedge a peer.
                        order.mark_dead(qi);
                        break 'drain;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
                match (known_slot, rec.try_decode()) {
                    (true, Some(ev)) => {
                        slot_worker(&mut workers, dets, si, qi, nworkers, sharded)
                            .process_event(&ev);
                    }
                    _ => corrupt += 1,
                }
                order.complete(ticket);
            } else {
                match (known_slot, rec.try_decode()) {
                    (true, Some(ev)) => {
                        slot_worker(&mut workers, dets, si, qi, nworkers, sharded)
                            .process_event(&ev);
                    }
                    _ => corrupt += 1,
                }
            }
            if let Some(p) = plan {
                for _ in 0..p.consumer_stall_yields(qi, processed) {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        } else if done.load(Ordering::Acquire) && q.is_empty() {
            break;
        } else {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
    let mut tallies = WorkerTallies {
        corrupt,
        slot_events: vec![0; dets.len()],
        ..WorkerTallies::default()
    };
    for (si, w) in workers.iter().enumerate() {
        let Some(w) = w else { continue };
        let events = w.event_count();
        tallies.events += events;
        tallies.slot_events[si] = events;
        let c = w.format_census();
        for (acc, n) in tallies.census.iter_mut().zip(c) {
            *acc += n;
        }
        tallies.paths.merge(&w.path_stats());
    }
    tallies
}

/// The lazily-created worker for group slot `si` (see [`drain_queue`]).
fn slot_worker<'w, 'd>(
    workers: &'w mut [Option<Worker<'d>>],
    dets: &'d [Arc<Detector>],
    si: usize,
    qi: usize,
    nworkers: usize,
    sharded: bool,
) -> &'w mut Worker<'d> {
    workers[si].get_or_insert_with(|| {
        if sharded {
            Worker::new_sharded(&dets[si], qi, nworkers)
        } else {
            Worker::new(&dets[si])
        }
    })
}

/// An [`EventSink`] that captures only host-side operations: the engine
/// passes it to the device's traced memcpy entry points and appends the
/// captured ops to its device-lifetime host trace.
#[derive(Debug, Default)]
pub(crate) struct HostOpBuffer {
    ops: Mutex<Vec<HostOp>>,
}

impl HostOpBuffer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Takes the captured host ops.
    pub(crate) fn take(&self) -> Vec<HostOp> {
        std::mem::take(&mut self.ops.lock().expect("host-op buffer poisoned"))
    }
}

impl EventSink for HostOpBuffer {
    fn emit(&self, _block: u64, _record: Record) {}

    fn emit_host(&self, op: &HostOp) {
        self.ops.lock().expect("host-op buffer poisoned").push(*op);
    }
}
