//! Happens-before litmus tests for the persistent engine's CUDA-style
//! host API: stream ordering, synchronization edges, and host↔device
//! memcpy races — checked end-to-end through real PTX launches.

use barracuda::{Engine, GridDims, KernelRun, ParamValue, RaceClass, StreamId};

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

/// One thread stores 1 to `[p]`.
fn writer() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b64 %rd<2>;\n\
         ld.param.u64 %rd1, [p];\n\
         st.global.u32 [%rd1], 1;\n\
         ret;\n}}"
    )
}

/// One thread loads from `[p]`.
fn reader() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<2>;\n.reg .b64 %rd<2>;\n\
         ld.param.u64 %rd1, [p];\n\
         ld.global.u32 %r1, [%rd1];\n\
         ret;\n}}"
    )
}

fn run<'a>(source: &'a str, params: &'a [ParamValue]) -> KernelRun<'a> {
    KernelRun {
        source,
        kernel: "k",
        dims: GridDims::new(1u32, 1u32),
        params,
    }
}

#[test]
fn same_stream_launches_are_ordered() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let a1 = eng
        .launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    let a2 = eng
        .launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    assert_eq!(a1.race_count(), 0);
    assert_eq!(a2.race_count(), 0, "{:?}", a2.races());
}

#[test]
fn cross_stream_conflict_is_an_inter_kernel_race() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    let a1 = eng
        .launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    let a2 = eng.launch_async(s1, &run(&src, &params)).unwrap();
    assert_eq!(a1.race_count(), 0);
    assert_eq!(a2.race_count(), 1, "{:?}", a2.races());
    assert_eq!(a2.races()[0].class, RaceClass::InterKernel);
}

#[test]
fn cross_stream_disjoint_addresses_are_clean() {
    let mut eng = Engine::new();
    let a = eng.gpu_mut().malloc(4);
    let b = eng.gpu_mut().malloc(4);
    let src = writer();
    let pa = [ParamValue::Ptr(a)];
    let pb = [ParamValue::Ptr(b)];
    let s1 = eng.create_stream();
    let a1 = eng
        .launch_async(StreamId::DEFAULT, &run(&src, &pa))
        .unwrap();
    let a2 = eng.launch_async(s1, &run(&src, &pb)).unwrap();
    assert_eq!(a1.race_count() + a2.race_count(), 0);
}

#[test]
fn device_synchronize_cuts_the_cross_stream_race() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    eng.launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    eng.device_synchronize().unwrap();
    let a2 = eng.launch_async(s1, &run(&src, &params)).unwrap();
    assert_eq!(a2.race_count(), 0, "{:?}", a2.races());
}

#[test]
fn stream_synchronize_cuts_the_cross_stream_race() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    eng.launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    eng.stream_synchronize(StreamId::DEFAULT).unwrap();
    let a2 = eng.launch_async(s1, &run(&src, &params)).unwrap();
    assert_eq!(a2.race_count(), 0, "{:?}", a2.races());
}

#[test]
fn h2d_memcpy_races_with_inflight_kernel() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    // Kernel writes buf on stream 1; the host memcpy on the default
    // stream does not wait for stream 1.
    eng.launch_async(s1, &run(&src, &params)).unwrap();
    let races = eng.memcpy_h2d(StreamId::DEFAULT, buf, &7u32.to_le_bytes()).unwrap();
    assert_eq!(races.len(), 1, "{races:?}");
    assert_eq!(races[0].class, RaceClass::HostDevice);
}

#[test]
fn d2h_memcpy_races_with_inflight_kernel_write() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    eng.launch_async(s1, &run(&src, &params)).unwrap();
    let mut out = [0u8; 4];
    let races = eng.memcpy_d2h(StreamId::DEFAULT, buf, &mut out).unwrap();
    assert_eq!(races.len(), 1, "{races:?}");
    assert_eq!(races[0].class, RaceClass::HostDevice);
}

#[test]
fn memcpy_after_stream_synchronize_is_clean() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    eng.launch_async(s1, &run(&src, &params)).unwrap();
    eng.stream_synchronize(s1).unwrap();
    let races = eng.memcpy_h2d(StreamId::DEFAULT, buf, &7u32.to_le_bytes()).unwrap();
    assert!(races.is_empty(), "{races:?}");
    assert_eq!(eng.gpu().read_u32(buf), 7);
}

#[test]
fn same_stream_memcpy_is_ordered_with_its_kernel() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    // Same stream: the copy waits for the kernel (stream order), no race.
    eng.launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    let races = eng.memcpy_h2d(StreamId::DEFAULT, buf, &7u32.to_le_bytes()).unwrap();
    assert!(races.is_empty(), "{races:?}");
}

#[test]
fn kernel_after_h2d_sees_the_host_write() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = reader();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    // Launches are ordered after all prior host operations, on any stream.
    let races = eng.memcpy_h2d(StreamId::DEFAULT, buf, &7u32.to_le_bytes()).unwrap();
    assert!(races.is_empty());
    let a = eng.launch_async(s1, &run(&src, &params)).unwrap();
    assert_eq!(a.race_count(), 0, "{:?}", a.races());
}

#[test]
fn host_trace_records_the_device_lifetime() {
    use barracuda::HostOp;
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    eng.memcpy_h2d(StreamId::DEFAULT, buf, &0u32.to_le_bytes()).unwrap();
    eng.launch_async(StreamId::DEFAULT, &run(&src, &params))
        .unwrap();
    eng.stream_synchronize(StreamId::DEFAULT).unwrap();
    let mut out = [0u8; 4];
    eng.memcpy_d2h(StreamId::DEFAULT, buf, &mut out).unwrap();
    eng.device_synchronize().unwrap();
    let trace = eng.host_trace();
    assert!(matches!(
        trace[0],
        HostOp::MemcpyH2D {
            stream: 0,
            len: 4,
            ..
        }
    ));
    assert!(matches!(
        trace[1],
        HostOp::LaunchKernel {
            stream: 0,
            epoch: 0
        }
    ));
    assert!(matches!(trace[2], HostOp::StreamSynchronize { stream: 0 }));
    assert!(matches!(
        trace[3],
        HostOp::MemcpyD2H {
            stream: 0,
            len: 4,
            ..
        }
    ));
    assert!(matches!(trace[4], HostOp::DeviceSynchronize));
    assert_eq!(eng.launches().len(), 1);
    assert_eq!(eng.launches()[0].kernel, "k");
}

#[test]
fn module_cache_reuses_one_instrumentation() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    eng.check(&run(&src, &params)).unwrap();
    eng.check(&run(&src, &params)).unwrap();
    eng.check(&run(&src, &params)).unwrap();
    assert_eq!(eng.module_cache_len(), 1, "one source → one rewrite");
    assert_eq!(eng.module_cache_hits(), 2);
    // A different module is a different cache entry.
    let src2 = reader();
    eng.check(&run(&src2, &params)).unwrap();
    assert_eq!(eng.module_cache_len(), 2);
}

#[test]
fn warp_size_sweep_reuses_the_cached_module() {
    let mut eng = Engine::new();
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let results = eng
        .check_warp_sizes(&run(&src, &params), &[32, 16, 8, 4])
        .unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(eng.module_cache_len(), 1);
    assert_eq!(eng.module_cache_hits(), 3);
}
