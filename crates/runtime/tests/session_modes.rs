//! Behavior of the session facade across detection modes, including the
//! chaos-hardening guarantees of the threaded pipeline. These were the
//! in-file `session.rs` tests before the engine refactor; they pin the
//! facade's behavior through the persistent engine.

use barracuda::{
    Barracuda, BarracudaConfig, DetectionMode, Error, FaultPlan, GridDims, KernelRun, ParamValue,
    RaceClass,
};

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

fn src(body: &str, params: &str) -> String {
    format!("{HEADER}.visible .entry k({params})\n{{\n{body}\n}}")
}

#[test]
fn racy_counter_detected_in_both_modes() {
    let source = src(
        ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [ctr];\n\
         ld.global.u32 %r1, [%rd1];\n\
         add.s32 %r1, %r1, 1;\n\
         st.global.u32 [%rd1], %r1;\n\
         ret;",
        ".param .u64 ctr",
    );
    for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
        let mut bar = Barracuda::with_config(BarracudaConfig {
            mode,
            ..BarracudaConfig::default()
        });
        let ctr = bar.gpu_mut().malloc(4);
        let a = bar
            .check(&KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(4u32, 1u32),
                params: &[ParamValue::Ptr(ctr)],
            })
            .unwrap();
        assert!(a.race_count() > 0, "{mode:?}");
        assert!(a.count_class(RaceClass::InterBlock) > 0, "{mode:?}");
    }
}

#[test]
fn disjoint_writes_clean() {
    let source = src(
        ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         mov.u32 %r1, %tid.x;\n\
         mov.u32 %r2, %ctaid.x;\n\
         mov.u32 %r3, %ntid.x;\n\
         mad.lo.s32 %r4, %r2, %r3, %r1;\n\
         ld.param.u64 %rd1, [buf];\n\
         mul.wide.s32 %rd2, %r4, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r4;\n\
         ret;",
        ".param .u64 buf",
    );
    let mut bar = Barracuda::new();
    let buf = bar.gpu_mut().malloc(64 * 4);
    let a = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(2u32, 32u32),
            params: &[ParamValue::Ptr(buf)],
        })
        .unwrap();
    assert!(a.is_clean(), "{:?}", a.races());
    assert!(a.stats().records > 0);
    assert!(a.stats().events > 0);
}

#[test]
fn native_run_produces_no_detection() {
    let source = src(
        ".reg .b64 %rd<4>;\nld.param.u64 %rd1, [b];\nst.global.u32 [%rd1], 1;\nret;",
        ".param .u64 b",
    );
    let mut bar = Barracuda::new();
    let b = bar.gpu_mut().malloc(4);
    let stats = bar
        .run_native(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(1u32, 1u32),
            params: &[ParamValue::Ptr(b)],
        })
        .unwrap();
    assert!(stats.instructions > 0);
    assert_eq!(bar.gpu().read_u32(b), 1);
}

#[test]
fn threaded_and_sync_agree() {
    // A mixed workload with barriers and shared memory.
    let source = src(
        ".reg .b32 %r<8>;\n.reg .b64 %rd<8>;\n\
         .shared .align 4 .b8 sm[128];\n\
         mov.u32 %r1, %tid.x;\n\
         mul.wide.s32 %rd2, %r1, 4;\n\
         mov.u64 %rd4, sm;\n\
         add.s64 %rd5, %rd4, %rd2;\n\
         st.shared.u32 [%rd5], %r1;\n\
         bar.sync 0;\n\
         ld.param.u64 %rd1, [buf];\n\
         ld.shared.u32 %r2, [%rd5];\n\
         st.global.u32 [%rd1], %r2;\n\
         ret;",
        ".param .u64 buf",
    );
    let run_with = |mode| {
        let mut bar = Barracuda::with_config(BarracudaConfig {
            mode,
            ..Default::default()
        });
        let buf = bar.gpu_mut().malloc(4);
        bar.check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(2u32, 32u32),
            params: &[ParamValue::Ptr(buf)],
        })
        .unwrap()
        .race_count()
    };
    assert_eq!(
        run_with(DetectionMode::Synchronous),
        run_with(DetectionMode::Threaded)
    );
}

#[test]
fn barrier_divergence_surfaces_as_sim_error() {
    let source = src(
        ".reg .pred %p;\n.reg .b32 %r<4>;\n\
         mov.u32 %r1, %tid.x;\n\
         setp.eq.s32 %p, %r1, 0;\n\
         @%p bra L;\n\
         bar.sync 0;\n\
         L:\n\
         ret;",
        "",
    );
    let mut bar = Barracuda::new();
    let err = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(1u32, 8u32),
            params: &[],
        })
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Sim(barracuda::SimError::BarrierDivergence { .. })
    ));
}

#[test]
fn parse_errors_propagate() {
    let mut bar = Barracuda::new();
    let err = bar
        .check(&KernelRun {
            source: "this is not ptx",
            kernel: "k",
            dims: GridDims::new(1u32, 1u32),
            params: &[],
        })
        .unwrap_err();
    assert!(matches!(err, Error::Ptx(_)));
}

/// A racy whole-grid counter: every thread of every block increments
/// `[ctr]` without atomics, producing records on every queue.
fn racy_counter_src() -> String {
    src(
        ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [ctr];\n\
         ld.global.u32 %r1, [%rd1];\n\
         add.s32 %r1, %r1, 1;\n\
         st.global.u32 [%rd1], %r1;\n\
         ret;",
        ".param .u64 ctr",
    )
}

fn chaos_config(plan: FaultPlan) -> BarracudaConfig {
    BarracudaConfig {
        mode: DetectionMode::Threaded,
        gpu: barracuda::GpuConfig {
            num_sms: 2,
            ..Default::default()
        },
        queues_per_sm: 1.0, // → 2 queues / 2 workers
        queue_capacity: 64,
        push_stall_budget: 4_096,
        fault_plan: Some(plan),
        ..BarracudaConfig::default()
    }
}

#[test]
fn injected_worker_panic_degrades_instead_of_aborting() {
    let source = racy_counter_src();
    let plan = FaultPlan::none().with_worker_panic(barracuda::WorkerPanic {
        worker: 0,
        after_records: 5,
    });
    let mut cfg = chaos_config(plan);
    // Small enough that the dead worker's queue overflows its stall
    // budget and sheds records.
    cfg.queue_capacity = 8;
    cfg.push_stall_budget = 512;
    let mut bar = Barracuda::with_config(cfg);
    let ctr = bar.gpu_mut().malloc(4);
    let a = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(32u32, 32u32),
            params: &[ParamValue::Ptr(ctr)],
        })
        .expect("check completes despite the panic");
    assert!(a.is_degraded(), "{:?}", a.diagnostics());
    assert!(a
        .diagnostics()
        .iter()
        .any(|d| matches!(d, barracuda::Diagnostic::WorkerPanic { worker: 0, .. })));
    let p = &a.stats().pipeline;
    assert_eq!(p.worker_panics, 1);
    assert_eq!(p.queues, 2);
    assert!(p.per_worker[0].panicked && !p.per_worker[1].panicked);
    // The surviving worker still processed its queue's events.
    assert!(p.per_worker[1].events > 0);
    // The panicked worker's queue backed up and shed records once the
    // stall budget ran out — accounted, not deadlocked.
    assert!(p.records_dropped > 0, "{p:?}");
    assert!(a
        .diagnostics()
        .iter()
        .any(|d| matches!(d, barracuda::Diagnostic::LostRecords { dropped, .. } if *dropped > 0)));
}

#[test]
fn full_queue_stall_window_counts_pressure_without_losing_records() {
    let source = racy_counter_src();
    // Aggressive consumer stalls against a tiny queue: producers must
    // wait (bounded), but with a live consumer nothing is lost.
    let plan = FaultPlan::none().with_consumer_stall(barracuda::ConsumerStall {
        every_records: 1,
        yields: 50,
    });
    let mut cfg = chaos_config(plan);
    cfg.queue_capacity = 4;
    cfg.push_stall_budget = 1 << 20;
    let mut bar = Barracuda::with_config(cfg);
    let ctr = bar.gpu_mut().malloc(4);
    let a = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(4u32, 32u32),
            params: &[ParamValue::Ptr(ctr)],
        })
        .unwrap();
    let p = &a.stats().pipeline;
    assert_eq!(
        p.records_dropped, 0,
        "stall-only chaos must not lose records"
    );
    assert_eq!(p.records_corrupt, 0);
    assert_eq!(p.worker_panics, 0);
    assert!(!a.is_degraded());
    assert!(p.queue_high_water >= 1 && p.queue_high_water <= 4, "{p:?}");
    assert!(
        p.producer_stall_cycles > 0,
        "a 4-deep queue must have stalled producers"
    );
    // All produced records were processed.
    assert_eq!(
        a.stats().records,
        p.per_worker.iter().map(|w| w.events).sum::<u64>()
    );
    assert!(
        a.race_count() > 0,
        "the racy counter must still be detected"
    );
}

#[test]
fn injected_drops_and_corruption_are_accounted() {
    let source = racy_counter_src();
    let plan = FaultPlan {
        seed: 9,
        drop_rate: 0.5,
        corrupt_rate: 0.2,
        ..FaultPlan::none()
    };
    let mut bar = Barracuda::with_config(chaos_config(plan));
    let ctr = bar.gpu_mut().malloc(4);
    let a = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(8u32, 32u32),
            params: &[ParamValue::Ptr(ctr)],
        })
        .unwrap();
    let p = &a.stats().pipeline;
    assert!(p.records_dropped > 0);
    assert!(p.records_corrupt > 0);
    assert!(a.is_degraded());
    // Produced = delivered-and-decoded + corrupt + dropped.
    let delivered: u64 = p.per_worker.iter().map(|w| w.events).sum();
    assert_eq!(
        a.stats().records,
        delivered + p.records_corrupt + p.records_dropped
    );
}

#[test]
fn stall_only_chaos_agrees_with_synchronous_verdict() {
    let source = racy_counter_src();
    let race_count = |cfg: BarracudaConfig| {
        let mut bar = Barracuda::with_config(cfg);
        let ctr = bar.gpu_mut().malloc(4);
        bar.check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(4u32, 32u32),
            params: &[ParamValue::Ptr(ctr)],
        })
        .unwrap()
        .race_count()
    };
    let sync = race_count(BarracudaConfig::default());
    for seed in [1u64, 2, 3] {
        assert_eq!(
            race_count(chaos_config(FaultPlan::stalls_only(seed))),
            sync,
            "seed {seed}"
        );
    }
}

#[test]
fn persistent_pool_survives_a_panicked_launch() {
    // A worker panic fails one launch; the *same* engine's next launch
    // must run on healthy workers again (the pool catches the panic in
    // its command loop instead of losing the thread).
    let source = racy_counter_src();
    let plan = FaultPlan::none().with_worker_panic(barracuda::WorkerPanic {
        worker: 0,
        after_records: 5,
    });
    let mut cfg = chaos_config(plan);
    cfg.queue_capacity = 8;
    cfg.push_stall_budget = 512;
    let mut bar = Barracuda::with_config(cfg);
    let ctr = bar.gpu_mut().malloc(4);
    let run = |bar: &mut Barracuda, ctr| {
        bar.check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(32u32, 32u32),
            params: &[ParamValue::Ptr(ctr)],
        })
        .unwrap()
    };
    let first = run(&mut bar, ctr);
    assert!(first.is_degraded());
    // The fault plan re-fires per launch (deterministic coordinates), so
    // the second launch also degrades — but it *completes*, proving the
    // pool recovered the worker and purged the dead queue.
    let second = run(&mut bar, ctr);
    assert_eq!(second.stats().pipeline.worker_panics, 1);
    assert!(second.stats().pipeline.per_worker[1].events > 0);

    // Stronger than liveness: with the faults cleared, the *same* engine
    // must produce the exact verdict a fresh engine produces — the
    // panicked launches left no queue residue, no stale sync tickets and
    // no poisoned shadow behind. (A fresh buffer avoids carryover from
    // the degraded launches; same-stream ordering covers the rest.)
    bar.engine_mut().set_fault_plan(None);
    let fresh_ctr = bar.gpu_mut().malloc(4);
    let healed = bar
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(32u32, 32u32),
            params: &[ParamValue::Ptr(fresh_ctr)],
        })
        .unwrap();
    assert!(!healed.is_degraded(), "{:?}", healed.diagnostics());
    assert_eq!(healed.stats().pipeline.worker_panics, 0);
    assert_eq!(healed.stats().pipeline.records_dropped, 0);

    let mut baseline_cfg = chaos_config(FaultPlan::none());
    baseline_cfg.fault_plan = None;
    baseline_cfg.queue_capacity = 8;
    baseline_cfg.push_stall_budget = 512;
    let mut fresh = Barracuda::with_config(baseline_cfg);
    let ctr2 = fresh.gpu_mut().malloc(4);
    let baseline = fresh
        .check(&KernelRun {
            source: &source,
            kernel: "k",
            dims: GridDims::new(32u32, 32u32),
            params: &[ParamValue::Ptr(ctr2)],
        })
        .unwrap();
    assert_eq!(
        healed.race_count(),
        baseline.race_count(),
        "post-panic engine must match a fresh engine's verdict"
    );
}

#[test]
fn per_stream_telemetry_tracks_each_streams_launches() {
    use barracuda::{Engine, StreamId};
    let source = racy_counter_src();
    let mut cfg = chaos_config(FaultPlan::none());
    cfg.fault_plan = None;
    let mut eng = Engine::with_config(cfg);
    let a_buf = eng.gpu_mut().malloc(4);
    let b_buf = eng.gpu_mut().malloc(4);
    let s1 = eng.create_stream();
    let launch = |eng: &mut Engine, sid: StreamId, buf| {
        eng.launch_async(
            sid,
            &KernelRun {
                source: &source,
                kernel: "k",
                dims: GridDims::new(4u32, 32u32),
                params: &[ParamValue::Ptr(buf)],
            },
        )
        .unwrap()
    };
    // Two launches on the default stream, one on stream 1.
    launch(&mut eng, StreamId::DEFAULT, a_buf);
    launch(&mut eng, StreamId::DEFAULT, a_buf);
    let last = launch(&mut eng, s1, b_buf);

    let streams = &last.stats().pipeline.per_stream;
    assert_eq!(streams.len(), 2, "{streams:?}");
    assert_eq!(streams[0].stream, 0);
    assert_eq!(streams[0].launches, 2);
    assert!(streams[0].records > 0);
    assert_eq!(streams[1].stream, s1.0);
    assert_eq!(streams[1].launches, 1);
    assert!(streams[1].records > 0);
    // Lossless run: per-stream drop counters stay zero, and the peak
    // depth observed by the later launch can only grow.
    assert_eq!(streams[0].dropped + streams[1].dropped, 0);
    assert!(streams[1].peak_depth >= 1);

    // The JSON schema carries the same counters.
    let doc = barracuda::statsjson::parse(&barracuda::statsjson::to_json(&last)).unwrap();
    let js = doc
        .get("stats")
        .and_then(|s| s.get("pipeline"))
        .and_then(|p| p.get("per_stream"))
        .and_then(barracuda::statsjson::Json::as_arr)
        .expect("per_stream array");
    assert_eq!(js.len(), 2);
    assert_eq!(
        js[1]
            .get("launches")
            .and_then(barracuda::statsjson::Json::as_u64),
        Some(1)
    );
}
