//! End-to-end tests of co-resident kernel interleaving
//! ([`BarracudaConfig::interleave_kernels`]): deferred launches, barrier
//! flushes, scheduler policies, spin-wait handoffs that *require* genuine
//! interleaving to terminate, and per-stream telemetry attribution.

use barracuda::{
    BarracudaConfig, DetectionMode, Engine, GridDims, KernelRun, ParamValue, RaceClass,
    SchedPolicy, StreamId,
};

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

/// One thread stores 1 to `[p]`.
fn writer() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b64 %rd<2>;\n\
         ld.param.u64 %rd1, [p];\n\
         st.global.u32 [%rd1], 1;\n\
         ret;\n}}"
    )
}

/// Per-thread disjoint writer: thread i stores to `p[i]`.
fn striding_writer() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<2>;\n.reg .b64 %rd<4>;\n\
         mov.u32 %r1, %tid.x;\n\
         ld.param.u64 %rd1, [p];\n\
         mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r1;\n\
         ret;\n}}"
    )
}

/// Flag-handoff producer without a fence: `p[0] = 42; p[1] = 1`.
fn producer() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b64 %rd<2>;\n\
         ld.param.u64 %rd1, [p];\n\
         st.global.u32 [%rd1], 42;\n\
         st.global.u32 [%rd1+4], 1;\n\
         ret;\n}}"
    )
}

/// Flag-handoff consumer: spin until `p[1] != 0`, then read `p[0]` and
/// publish it to `p[2]`. Terminates only if the producer runs *while*
/// this kernel spins (or already ran).
fn consumer() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .pred %p1;\n.reg .b32 %r<4>;\n.reg .b64 %rd<2>;\n\
         ld.param.u64 %rd1, [p];\n\
         L_wait:\n\
         ld.global.u32 %r1, [%rd1+4];\n\
         setp.eq.s32 %p1, %r1, 0;\n\
         @%p1 bra L_wait;\n\
         ld.global.u32 %r2, [%rd1];\n\
         st.global.u32 [%rd1+8], %r2;\n\
         ret;\n}}"
    )
}

fn run<'a>(source: &'a str, params: &'a [ParamValue], threads: u32) -> KernelRun<'a> {
    KernelRun {
        source,
        kernel: "k",
        dims: GridDims::new(1u32, threads),
        params,
    }
}

fn interleave_config(policy: SchedPolicy, mode: DetectionMode) -> BarracudaConfig {
    let mut cfg = BarracudaConfig {
        interleave_kernels: true,
        scheduler: policy,
        mode,
        ..BarracudaConfig::default()
    };
    // Keep the worker pool small: the parity matrix spawns many engines.
    cfg.gpu.num_sms = 4;
    cfg
}

const POLICIES: [SchedPolicy; 5] = [
    SchedPolicy::RoundRobin,
    SchedPolicy::Random(1),
    SchedPolicy::Random(0xdead_beef),
    SchedPolicy::StarveOne(0),
    SchedPolicy::StarveOne(1),
];

#[test]
fn launch_is_deferred_until_a_barrier_flushes_it() {
    let mut eng = Engine::with_config(interleave_config(
        SchedPolicy::RoundRobin,
        DetectionMode::Synchronous,
    ));
    let buf = eng.gpu_mut().malloc(4);
    let src = writer();
    let params = [ParamValue::Ptr(buf)];
    let s1 = eng.create_stream();
    let a1 = eng
        .launch_async(StreamId::DEFAULT, &run(&src, &params, 1))
        .unwrap();
    let a2 = eng.launch_async(s1, &run(&src, &params, 1)).unwrap();
    // Deferred: no execution yet, so no races yet and nothing written.
    assert_eq!(a1.race_count() + a2.race_count(), 0);
    assert_eq!(eng.pending_launches(), 2);
    assert_eq!(eng.gpu().read_u32(buf), 0, "kernel must not have run yet");

    let races = eng.device_synchronize().unwrap();
    assert_eq!(eng.pending_launches(), 0);
    assert_eq!(eng.gpu().read_u32(buf), 1, "flush executed the group");
    assert_eq!(races.len(), 1, "{races:?}");
    assert_eq!(races[0].class, RaceClass::InterKernel);
}

#[test]
fn same_stream_order_is_kept_inside_a_group() {
    for policy in POLICIES {
        let mut eng = Engine::with_config(interleave_config(policy, DetectionMode::Synchronous));
        let buf = eng.gpu_mut().malloc(4);
        let src = writer();
        let params = [ParamValue::Ptr(buf)];
        eng.launch_async(StreamId::DEFAULT, &run(&src, &params, 1))
            .unwrap();
        eng.launch_async(StreamId::DEFAULT, &run(&src, &params, 1))
            .unwrap();
        let races = eng.device_synchronize().unwrap();
        assert!(
            races.is_empty(),
            "same-stream launches are ordered under {policy:?}: {races:?}"
        );
    }
}

#[test]
fn check_in_interleave_mode_matches_eager_verdict_and_stats() {
    let src = striding_writer();
    let mut eager = Engine::new();
    let ebuf = eager.gpu_mut().malloc(256);
    let ea = eager
        .check(&run(&src, &[ParamValue::Ptr(ebuf)], 64))
        .unwrap();

    for policy in POLICIES {
        for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
            let mut eng = Engine::with_config(interleave_config(policy, mode));
            let buf = eng.gpu_mut().malloc(256);
            let a = eng.check(&run(&src, &[ParamValue::Ptr(buf)], 64)).unwrap();
            assert_eq!(a.race_count(), ea.race_count(), "{policy:?}/{mode:?}");
            assert_eq!(
                a.stats().records,
                ea.stats().records,
                "a singleton group emits exactly the eager record stream ({policy:?}/{mode:?})"
            );
            assert_eq!(a.stats().events, ea.stats().events, "{policy:?}/{mode:?}");
            assert!(a.stats().launch.instructions > 0);
            assert_eq!(eng.pending_launches(), 0, "check flushes its group");
        }
    }
}

#[test]
fn flag_handoff_terminates_only_through_genuine_interleaving() {
    // The consumer spins on a flag only the co-resident producer sets:
    // under every policy the group must make cross-kernel progress, and
    // the unfenced handoff must surface as inter-kernel races.
    for policy in POLICIES {
        for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
            let mut eng = Engine::with_config(interleave_config(policy, mode));
            let buf = eng.gpu_mut().malloc(12);
            let params = [ParamValue::Ptr(buf)];
            let prod = producer();
            let cons = consumer();
            let s1 = eng.create_stream();
            eng.launch_async(StreamId::DEFAULT, &run(&prod, &params, 1))
                .unwrap();
            eng.launch_async(s1, &run(&cons, &params, 1)).unwrap();
            let races = eng.device_synchronize().unwrap();
            assert_eq!(
                eng.gpu().read_u32s(buf, 3)[2],
                42,
                "consumer observed the handoff under {policy:?}/{mode:?}"
            );
            assert!(!races.is_empty(), "{policy:?}/{mode:?}");
            assert!(
                races.iter().all(|r| r.class == RaceClass::InterKernel),
                "{policy:?}/{mode:?}: {races:?}"
            );
        }
    }
}

#[test]
fn per_stream_telemetry_attributes_interleaved_launches_by_slot() {
    // Two streams with very different record volumes (64 threads vs 1):
    // interleaved execution must attribute records, events and launch
    // counts to the emitting launch's own stream, not smear them across
    // the group.
    let big = striding_writer();
    let small = writer();

    // Eager reference for the exact per-launch record/event counts.
    let mut eager = Engine::new();
    let b0 = eager.gpu_mut().malloc(256);
    let b1 = eager.gpu_mut().malloc(4);
    let s1 = eager.create_stream();
    eager
        .launch_async(StreamId::DEFAULT, &run(&big, &[ParamValue::Ptr(b0)], 64))
        .unwrap();
    eager.launch_async(s1, &run(&small, &[ParamValue::Ptr(b1)], 1)).unwrap();
    let eager_records: Vec<u64> = eager.launches().iter().map(|l| l.records).collect();
    let eager_events: Vec<u64> = eager.launches().iter().map(|l| l.events).collect();
    assert!(eager_records[0] > eager_records[1]);

    for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
        let mut eng = Engine::with_config(interleave_config(SchedPolicy::RoundRobin, mode));
        let b0 = eng.gpu_mut().malloc(256);
        let b1 = eng.gpu_mut().malloc(4);
        let s1 = eng.create_stream();
        eng.launch_async(StreamId::DEFAULT, &run(&big, &[ParamValue::Ptr(b0)], 64))
            .unwrap();
        eng.launch_async(s1, &run(&small, &[ParamValue::Ptr(b1)], 1))
            .unwrap();
        let races = eng.device_synchronize().unwrap();
        assert!(races.is_empty(), "{mode:?}: {races:?}");

        let summaries = eng.launches();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].stream, 0);
        assert_eq!(summaries[1].stream, s1.0);
        for i in 0..2 {
            assert_eq!(
                summaries[i].records, eager_records[i],
                "{mode:?}: launch {i} record attribution"
            );
            assert_eq!(
                summaries[i].events, eager_events[i],
                "{mode:?}: launch {i} event attribution"
            );
            assert_eq!(summaries[i].races, 0);
        }

        // The per-stream rollup seen by the next analysis carries the
        // same split: stream 1 ran exactly one small launch.
        let probe = eng.gpu_mut().malloc(4);
        let a = eng.check(&run(&small, &[ParamValue::Ptr(probe)], 1)).unwrap();
        let streams = &a.stats().pipeline.per_stream;
        assert_eq!(streams.len(), 2, "{mode:?}: {streams:?}");
        assert_eq!(streams[1].stream, s1.0);
        assert_eq!(streams[1].launches, 1);
        assert_eq!(streams[1].records, eager_records[1], "{mode:?}");
        assert_eq!(streams[1].dropped, 0);
        assert_eq!(streams[0].launches, 2); // big launch + the probe
    }
}

#[test]
fn verdicts_are_stable_across_policies_and_seeds() {
    // Mini differential sweep: a racy pair and a clean pair must keep
    // their verdicts under every policy, seed and pipeline mode.
    let src = striding_writer();
    for policy in POLICIES {
        for mode in [DetectionMode::Synchronous, DetectionMode::Threaded] {
            // Racy: both kernels stride the same buffer.
            let mut eng = Engine::with_config(interleave_config(policy, mode));
            let buf = eng.gpu_mut().malloc(256);
            let s1 = eng.create_stream();
            eng.launch_async(StreamId::DEFAULT, &run(&src, &[ParamValue::Ptr(buf)], 64))
                .unwrap();
            eng.launch_async(s1, &run(&src, &[ParamValue::Ptr(buf)], 64))
                .unwrap();
            let races = eng.device_synchronize().unwrap();
            assert!(!races.is_empty(), "{policy:?}/{mode:?}");
            assert!(races.iter().all(|r| r.class == RaceClass::InterKernel));

            // Clean: disjoint buffers.
            let mut eng = Engine::with_config(interleave_config(policy, mode));
            let a = eng.gpu_mut().malloc(256);
            let b = eng.gpu_mut().malloc(256);
            let s1 = eng.create_stream();
            eng.launch_async(StreamId::DEFAULT, &run(&src, &[ParamValue::Ptr(a)], 64))
                .unwrap();
            eng.launch_async(s1, &run(&src, &[ParamValue::Ptr(b)], 64))
                .unwrap();
            let races = eng.device_synchronize().unwrap();
            assert!(races.is_empty(), "{policy:?}/{mode:?}: {races:?}");
        }
    }
}
