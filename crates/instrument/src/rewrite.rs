//! PTX rewriting: logging-call insertion, predication transformation,
//! convergence markers and redundancy pruning (paper §4.1).

use crate::infer::infer_kinds;
use barracuda_ptx::ast::{
    AddrBase, Address, Guard, Instruction, Kernel, Module, Op, Operand, RegClass, Statement,
};
use barracuda_ptx::cfg::{Cfg, FlatKernel};
use barracuda_trace::ops::{AccessKind, MemSpace, Scope};
use barracuda_trace::record::RecordKind;
use std::collections::{HashMap, HashSet};

/// Instrumentation options.
#[derive(Debug, Clone)]
pub struct InstrumentOptions {
    /// Intra-basic-block redundant-log elimination (the Fig. 9
    /// "optimized" configuration).
    pub prune_redundant: bool,
    /// Insert `__barracuda_log_conv` markers at branch convergence points.
    pub convergence_markers: bool,
    /// Inject the unique-TID computation at kernel entry (§4.1).
    pub compute_tid: bool,
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions {
            prune_redundant: true,
            convergence_markers: true,
            compute_tid: true,
        }
    }
}

impl InstrumentOptions {
    /// The unoptimized configuration (no pruning), for the Fig. 9
    /// before/after comparison.
    pub fn unoptimized() -> Self {
        InstrumentOptions {
            prune_redundant: false,
            ..Self::default()
        }
    }
}

/// Statistics of one instrumentation run (drives Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentStats {
    /// Static PTX instructions in the original kernel(s).
    pub static_instructions: usize,
    /// Original instructions that received instrumentation: logged memory
    /// accesses, fences, barriers and conditional branches.
    pub instrumented_instructions: usize,
    /// `__barracuda_log_access` call-sites inserted.
    pub log_calls: usize,
    /// `__barracuda_log_conv` markers inserted.
    pub convergence_markers: usize,
    /// Memory accesses whose log was pruned as redundant.
    pub pruned: usize,
    /// Predicated instructions rewritten into branch + unpredicated form.
    pub predicated_transformed: usize,
    /// Inferred acquire operations.
    pub acquires: usize,
    /// Inferred release operations.
    pub releases: usize,
    /// Inferred acquire-release operations.
    pub acqrels: usize,
    /// Atomics left as standalone `atm` operations.
    pub standalone_atomics: usize,
}

impl InstrumentStats {
    /// Fraction of static instructions instrumented (the Fig. 9 y-axis).
    pub fn instrumented_fraction(&self) -> f64 {
        if self.static_instructions == 0 {
            0.0
        } else {
            self.instrumented_instructions as f64 / self.static_instructions as f64
        }
    }

    fn add(&mut self, other: &InstrumentStats) {
        self.static_instructions += other.static_instructions;
        self.instrumented_instructions += other.instrumented_instructions;
        self.log_calls += other.log_calls;
        self.convergence_markers += other.convergence_markers;
        self.pruned += other.pruned;
        self.predicated_transformed += other.predicated_transformed;
        self.acquires += other.acquires;
        self.releases += other.releases;
        self.acqrels += other.acqrels;
        self.standalone_atomics += other.standalone_atomics;
    }
}

/// Key identifying an address expression for pruning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum AddrKey {
    Reg(u32, i64),
    Sym(String, i64),
}

fn addr_key(addr: &Address) -> AddrKey {
    match &addr.base {
        AddrBase::Reg(r) => AddrKey::Reg(r.0, addr.offset),
        AddrBase::Sym(s) => AddrKey::Sym(s.clone(), addr.offset),
    }
}

/// What has already been logged for an address within the current block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoggedKind {
    Read,
    Write,
}

fn kind_code(kind: AccessKind) -> i64 {
    (match kind {
        AccessKind::Read => RecordKind::Read,
        AccessKind::Write => RecordKind::Write,
        AccessKind::Atomic => RecordKind::Atomic,
        AccessKind::Acquire(Scope::Block) => RecordKind::AcqBlk,
        AccessKind::Release(Scope::Block) => RecordKind::RelBlk,
        AccessKind::AcquireRelease(Scope::Block) => RecordKind::AcqRelBlk,
        AccessKind::Acquire(Scope::Global) => RecordKind::AcqGlb,
        AccessKind::Release(Scope::Global) => RecordKind::RelGlb,
        AccessKind::AcquireRelease(Scope::Global) => RecordKind::AcqRelGlb,
    }) as i64
}

fn space_code(space: barracuda_ptx::ast::Space) -> i64 {
    match space {
        barracuda_ptx::ast::Space::Global => 0,
        barracuda_ptx::ast::Space::Shared => 1,
        _ => 2, // generic: resolved at runtime
    }
}

/// Extracts `(space, access size in bytes, addr, store value)` from a
/// memory instruction.
fn access_parts(op: &Op) -> Option<(barracuda_ptx::ast::Space, u64, &Address, Option<&Operand>)> {
    match op {
        Op::Ld {
            space, ty, addr, ..
        } => Some((*space, ty.size(), addr, None)),
        Op::St {
            space,
            ty,
            addr,
            src,
            ..
        } => Some((*space, ty.size(), addr, Some(src))),
        Op::LdVec {
            space,
            ty,
            dsts,
            addr,
            ..
        } => Some((*space, ty.size() * dsts.len() as u64, addr, None)),
        // Vector stores carry several values: logged without the
        // same-value filter operand.
        Op::StVec {
            space,
            ty,
            srcs,
            addr,
            ..
        } => Some((*space, ty.size() * srcs.len() as u64, addr, None)),
        Op::Atom {
            space, ty, addr, ..
        } => Some((*space, ty.size(), addr, None)),
        Op::Red {
            space, ty, addr, ..
        } => Some((*space, ty.size(), addr, None)),
        _ => None,
    }
}

/// Instruments one kernel.
pub fn instrument_kernel(kernel: &Kernel, opts: &InstrumentOptions) -> (Kernel, InstrumentStats) {
    let mut stats = InstrumentStats {
        static_instructions: kernel.static_instruction_count(),
        ..Default::default()
    };
    let kinds: HashMap<usize, AccessKind> = infer_kinds(kernel)
        .into_iter()
        .map(|k| (k.stmt, k.kind))
        .collect();

    // Convergence points: reconvergence targets of conditional branches,
    // mapped back from flat instruction indices to statement indices.
    let mut conv_stmts: HashSet<usize> = HashSet::new();
    if opts.convergence_markers {
        let flat = FlatKernel::from_kernel(kernel);
        let cfg = Cfg::build(&flat);
        let stmt_of_instr: Vec<usize> = kernel
            .stmts
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Statement::Instr(_)).then_some(i))
            .collect();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if block.end == 0 || block.end > flat.instrs.len() {
                continue;
            }
            let last = &flat.instrs[block.end - 1];
            if matches!(last.op, Op::Bra { .. }) && last.guard.is_some() {
                if let Some(r) = cfg.reconvergence_point(b) {
                    conv_stmts.insert(stmt_of_instr[r]);
                }
            }
        }
    }

    let mut regs = kernel.regs.clone();
    let mut out: Vec<Statement> = Vec::with_capacity(kernel.stmts.len() * 2);
    let mut skip_label = 0u32;
    let mut logged: HashMap<AddrKey, LoggedKind> = HashMap::new();

    // Unique-TID computation at kernel entry (§4.1).
    if opts.compute_tid {
        use barracuda_ptx::ast::{Dim, MulMode, SpecialReg, Type};
        let t = regs.alloc(RegClass::B32);
        let c = regs.alloc(RegClass::B32);
        let n = regs.alloc(RegClass::B32);
        let lin = regs.alloc(RegClass::B32);
        let wide = regs.alloc(RegClass::B64);
        out.push(Statement::Instr(Instruction::new(Op::Mov {
            ty: Type::U32,
            dst: t,
            src: Operand::Special(SpecialReg::Tid(Dim::X)),
        })));
        out.push(Statement::Instr(Instruction::new(Op::Mov {
            ty: Type::U32,
            dst: c,
            src: Operand::Special(SpecialReg::Ctaid(Dim::X)),
        })));
        out.push(Statement::Instr(Instruction::new(Op::Mov {
            ty: Type::U32,
            dst: n,
            src: Operand::Special(SpecialReg::Ntid(Dim::X)),
        })));
        out.push(Statement::Instr(Instruction::new(Op::Mad {
            mode: MulMode::Lo,
            ty: Type::S32,
            dst: lin,
            a: Operand::Reg(c),
            b: Operand::Reg(n),
            c: Operand::Reg(t),
        })));
        out.push(Statement::Instr(Instruction::new(Op::Cvt {
            dty: Type::U64,
            sty: Type::U32,
            dst: wide,
            a: Operand::Reg(lin),
        })));
    }

    for (i, stmt) in kernel.stmts.iter().enumerate() {
        if conv_stmts.contains(&i) {
            out.push(Statement::Instr(Instruction::new(Op::Call {
                target: "__barracuda_log_conv".to_string(),
                args: vec![],
            })));
            stats.convergence_markers += 1;
        }
        match stmt {
            Statement::Label(l) => {
                logged.clear();
                out.push(Statement::Label(l.clone()));
            }
            Statement::Instr(instr) => {
                // Fences, barriers and conditional branches are hooked by
                // the framework (counted as instrumented).
                match &instr.op {
                    Op::Membar { .. } | Op::Bar { .. } => {
                        stats.instrumented_instructions += 1;
                        logged.clear();
                    }
                    Op::Bra { .. } if instr.guard.is_some() => {
                        stats.instrumented_instructions += 1;
                    }
                    Op::Atom { .. } | Op::Red { .. } => logged.clear(),
                    _ => {}
                }
                if instr.op.is_terminator() {
                    logged.clear();
                }

                let mut emit_plain = true;
                if let Some(&kind) = kinds.get(&i) {
                    let (space, size, addr, value) =
                        access_parts(&instr.op).expect("inferred kinds are memory ops");
                    // Pruning: only plain reads/writes; sync kinds always log.
                    let key = addr_key(addr);
                    let prunable = matches!(kind, AccessKind::Read | AccessKind::Write)
                        && opts.prune_redundant
                        && instr.guard.is_none();
                    let covered = prunable
                        && matches!(
                            (logged.get(&key), kind),
                            (Some(LoggedKind::Write), _)
                                | (Some(LoggedKind::Read), AccessKind::Read)
                        );
                    if covered {
                        stats.pruned += 1;
                    } else {
                        stats.instrumented_instructions += 1;
                        stats.log_calls += 1;
                        match kind {
                            AccessKind::Acquire(_) => stats.acquires += 1,
                            AccessKind::Release(_) => stats.releases += 1,
                            AccessKind::AcquireRelease(_) => stats.acqrels += 1,
                            AccessKind::Atomic => stats.standalone_atomics += 1,
                            _ => {}
                        }
                        let mut args = vec![
                            Operand::Imm(kind_code(kind)),
                            Operand::Imm(space_code(space)),
                            Operand::Imm(size as i64),
                            match &addr.base {
                                AddrBase::Reg(r) => Operand::Reg(*r),
                                AddrBase::Sym(s) => Operand::Sym(s.clone()),
                            },
                            Operand::Imm(addr.offset),
                        ];
                        if kind == AccessKind::Write {
                            if let Some(v) = value {
                                args.push(v.clone());
                            }
                        }
                        let call = Instruction::new(Op::Call {
                            target: "__barracuda_log_access".to_string(),
                            args,
                        });
                        if let Some(Guard { pred, negated }) = instr.guard {
                            // Predication transform: cover the log call
                            // and the access with a branch.
                            let label = format!("__bar_skip_{skip_label}");
                            skip_label += 1;
                            out.push(Statement::Instr(Instruction::guarded(
                                pred,
                                !negated,
                                Op::Bra {
                                    uni: false,
                                    target: label.clone(),
                                },
                            )));
                            out.push(Statement::Instr(call));
                            out.push(Statement::Instr(Instruction::new(instr.op.clone())));
                            out.push(Statement::Label(label));
                            stats.predicated_transformed += 1;
                            logged.clear(); // new block boundaries
                            emit_plain = false;
                        } else {
                            out.push(Statement::Instr(call));
                            if prunable {
                                let lk = if kind == AccessKind::Write {
                                    LoggedKind::Write
                                } else {
                                    LoggedKind::Read
                                };
                                logged.insert(key, lk);
                            }
                        }
                    }
                }
                if emit_plain {
                    out.push(Statement::Instr(instr.clone()));
                }
                // Invalidate pruning entries whose base register this
                // instruction redefines.
                for def in instr.op.defs() {
                    logged.retain(|k, _| !matches!(k, AddrKey::Reg(r, _) if *r == def.0));
                }
            }
        }
    }

    let new_kernel = Kernel {
        name: kernel.name.clone(),
        params: kernel.params.clone(),
        regs,
        shared: kernel.shared.clone(),
        stmts: out,
    };
    (new_kernel, stats)
}

/// Instruments every kernel in a module, aggregating statistics.
pub fn instrument_module(module: &Module, opts: &InstrumentOptions) -> (Module, InstrumentStats) {
    let mut out = module.clone();
    let mut stats = InstrumentStats::default();
    out.kernels = module
        .kernels
        .iter()
        .map(|k| {
            let (nk, s) = instrument_kernel(k, opts);
            stats.add(&s);
            nk
        })
        .collect();
    (out, stats)
}

/// The memory space a logged access resolves to at instrumentation time
/// (exposed for tests).
pub fn static_space(space: barracuda_ptx::ast::Space) -> Option<MemSpace> {
    match space {
        barracuda_ptx::ast::Space::Global => Some(MemSpace::Global),
        barracuda_ptx::ast::Space::Shared => Some(MemSpace::Shared),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barracuda_ptx::printer::print_module;

    fn module(body: &str) -> Module {
        barracuda_ptx::parse(&format!(
            ".version 4.3\n.target sm_35\n.address_size 64\n.visible .entry k(.param .u64 p)\n{{\n\
             .reg .pred %pp;\n.reg .b32 %r<8>;\n.reg .b64 %rd<8>;\n{body}\n}}"
        ))
        .unwrap()
    }

    #[test]
    fn instrumented_module_reparses() {
        let m = module(
            "ld.param.u64 %rd1, [p];\nld.global.u32 %r1, [%rd1];\nst.global.u32 [%rd1], %r1;\nret;",
        );
        let (im, stats) = instrument_module(&m, &InstrumentOptions::default());
        let text = print_module(&im);
        barracuda_ptx::parse(&text).expect("instrumented PTX must reparse");
        assert_eq!(stats.log_calls, 2);
        assert!(text.contains("__barracuda_log_access"));
    }

    #[test]
    fn log_call_precedes_access() {
        let m = module("ld.param.u64 %rd1, [p];\nst.global.u32 [%rd1], 7;\nret;");
        let (im, _) = instrument_module(&m, &InstrumentOptions::default());
        let instrs: Vec<&Op> = im.kernels[0].instructions().map(|i| &i.op).collect();
        let call_pos = instrs
            .iter()
            .position(
                |o| matches!(o, Op::Call { target, .. } if target == "__barracuda_log_access"),
            )
            .expect("log call present");
        assert!(matches!(instrs[call_pos + 1], Op::St { .. }));
        // Store value passed for same-value filtering.
        match instrs[call_pos] {
            Op::Call { args, .. } => {
                assert_eq!(args.len(), 6);
                assert_eq!(args[5], Operand::Imm(7));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn param_loads_not_logged() {
        let m = module("ld.param.u64 %rd1, [p];\nret;");
        let (_, stats) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(stats.log_calls, 0);
    }

    #[test]
    fn pruning_skips_repeated_access() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             ld.global.u32 %r1, [%rd1];\n\
             ld.global.u32 %r2, [%rd1];\n\
             st.global.u32 [%rd1+4], %r1;\n\
             st.global.u32 [%rd1+4], %r2;\n\
             ret;",
        );
        let (_, opt) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(opt.pruned, 2, "second load and second store pruned");
        assert_eq!(opt.log_calls, 2);
        let (_, unopt) = instrument_module(&m, &InstrumentOptions::unoptimized());
        assert_eq!(unopt.pruned, 0);
        assert_eq!(unopt.log_calls, 4);
        assert!(opt.instrumented_fraction() < unopt.instrumented_fraction());
    }

    #[test]
    fn write_covers_subsequent_read_but_not_vice_versa() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             st.global.u32 [%rd1], 1;\n\
             ld.global.u32 %r1, [%rd1];\n\
             ret;",
        );
        let (_, s) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(s.pruned, 1, "read after write to same address pruned");
        let m2 = module(
            "ld.param.u64 %rd1, [p];\n\
             ld.global.u32 %r1, [%rd1];\n\
             st.global.u32 [%rd1], 1;\n\
             ret;",
        );
        let (_, s2) = instrument_module(&m2, &InstrumentOptions::default());
        assert_eq!(s2.pruned, 0, "write after read must still be logged");
    }

    #[test]
    fn redefined_base_register_invalidates_pruning() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             ld.global.u32 %r1, [%rd1];\n\
             add.s64 %rd1, %rd1, 8;\n\
             ld.global.u32 %r2, [%rd1];\n\
             ret;",
        );
        let (_, s) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(s.pruned, 0);
        assert_eq!(s.log_calls, 2);
    }

    #[test]
    fn fence_invalidates_pruning() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             ld.global.u32 %r1, [%rd1];\n\
             bar.sync 0;\n\
             ld.global.u32 %r2, [%rd1];\n\
             ret;",
        );
        let (_, s) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(s.pruned, 0);
    }

    #[test]
    fn predicated_access_transformed_into_branch() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             @%pp st.global.u32 [%rd1], 1;\n\
             ret;",
        );
        let (im, s) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(s.predicated_transformed, 1);
        let text = print_module(&im);
        assert!(text.contains("__bar_skip_0"), "{text}");
        // The store itself is now unguarded.
        let k = &im.kernels[0];
        for i in k.instructions() {
            if matches!(i.op, Op::St { .. }) {
                assert!(i.guard.is_none());
            }
        }
        barracuda_ptx::parse(&text).expect("reparses");
    }

    #[test]
    fn convergence_markers_at_reconvergence_points() {
        let m = module(
            "setp.eq.s32 %pp, %r1, 0;\n\
             @%pp bra L_end;\n\
             mov.u32 %r2, 1;\n\
             L_end:\n\
             ret;",
        );
        let (im, s) = instrument_module(&m, &InstrumentOptions::default());
        assert_eq!(s.convergence_markers, 1);
        let text = print_module(&im);
        assert!(text.contains("__barracuda_log_conv"));
        barracuda_ptx::parse(&text).expect("reparses");
    }

    #[test]
    fn inference_stats_counted() {
        let m = module(
            "ld.param.u64 %rd1, [p];\n\
             membar.gl;\n\
             st.global.u32 [%rd1], 1;\n\
             ld.global.u32 %r1, [%rd1+4];\n\
             membar.cta;\n\
             atom.global.add.u32 %r2, [%rd1+8], 1;\n\
             membar.cta;\n\
             atom.global.add.u32 %r3, [%rd1+16], 1;\n\
             ret;",
        );
        let (_, s) = instrument_module(&m, &InstrumentOptions::default());
        // membar.gl + st → release; ld + membar.cta → acquire; the first
        // atomic sits between two fences → acquire-release; the second is
        // fence-preceded (the fence after the first atomic binds forward
        // too) → conservative release half.
        assert_eq!(s.releases, 2);
        assert_eq!(s.acquires, 1);
        assert_eq!(s.acqrels, 1);
        assert_eq!(s.standalone_atomics, 0);
        assert_eq!(s.log_calls, 4);
    }

    #[test]
    fn tid_computation_injected() {
        let m = module("ret;");
        let (im, _) = instrument_module(&m, &InstrumentOptions::default());
        assert!(im.kernels[0].static_instruction_count() > 1);
        let off = InstrumentOptions {
            compute_tid: false,
            ..InstrumentOptions::default()
        };
        let (im2, _) = instrument_module(&m, &off);
        assert_eq!(im2.kernels[0].static_instruction_count(), 1);
    }
}
