//! Inference of high-level synchronization operations from static PTX
//! (paper §3.1).

use barracuda_ptx::ast::{AtomOp, FenceLevel, Kernel, Op, Space, Statement};
use barracuda_trace::ops::{AccessKind, Scope};

/// The inferred logging kind for one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferredKind {
    /// Index into the kernel's statement list.
    pub stmt: usize,
    /// The inferred trace-operation kind.
    pub kind: AccessKind,
}

fn scope_of(level: FenceLevel) -> Scope {
    match level {
        FenceLevel::Cta => Scope::Block,
        // System-level fences are treated as global (paper footnote 1).
        FenceLevel::Gl | FenceLevel::Sys => Scope::Global,
    }
}

fn stronger(a: Scope, b: Scope) -> Scope {
    if a == Scope::Global || b == Scope::Global {
        Scope::Global
    } else {
        Scope::Block
    }
}

/// True for memory accesses the detector tracks (global/shared/generic;
/// param and local are thread-private or read-only).
fn tracked(space: Space) -> bool {
    matches!(space, Space::Global | Space::Shared | Space::Generic)
}

/// Walks each kernel statement and classifies every tracked memory
/// instruction, bundling fence-adjacent loads/stores/atomics into
/// acquire/release operations. Adjacency is *static, within a basic
/// block*: a label or control transfer breaks adjacency.
pub fn infer_kinds(kernel: &Kernel) -> Vec<InferredKind> {
    let stmts = &kernel.stmts;
    // Adjacent instruction indices (None across labels/terminators).
    let prev_instr: Vec<Option<usize>> = {
        let mut v = vec![None; stmts.len()];
        let mut prev: Option<usize> = None;
        for (i, s) in stmts.iter().enumerate() {
            match s {
                Statement::Label(_) => prev = None,
                Statement::Instr(instr) => {
                    v[i] = prev;
                    prev = if instr.op.is_terminator() {
                        None
                    } else {
                        Some(i)
                    };
                }
            }
        }
        v
    };
    let next_instr: Vec<Option<usize>> = {
        let mut v = vec![None; stmts.len()];
        let mut next: Option<usize> = None;
        for (i, s) in stmts.iter().enumerate().rev() {
            match s {
                Statement::Label(_) => next = None,
                Statement::Instr(instr) => {
                    v[i] = next;
                    next = Some(i);
                    if instr.op.is_terminator() {
                        // The terminator itself has a next within... no:
                        // nothing follows a terminator in its block, but
                        // the terminator is the "next" of its predecessor.
                        v[i] = None;
                    }
                }
            }
        }
        v
    };
    let fence_at = |idx: Option<usize>| -> Option<Scope> {
        let i = idx?;
        match &stmts[i] {
            Statement::Instr(instr) => match instr.op {
                Op::Membar { level } if instr.guard.is_none() => Some(scope_of(level)),
                _ => None,
            },
            Statement::Label(_) => None,
        }
    };

    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        let Statement::Instr(instr) = s else { continue };
        let kind = match &instr.op {
            Op::Ld { space, .. } | Op::LdVec { space, .. } if tracked(*space) => {
                match fence_at(next_instr[i]) {
                    Some(scope) => AccessKind::Acquire(scope),
                    None => AccessKind::Read,
                }
            }
            Op::St { space, .. } | Op::StVec { space, .. } if tracked(*space) => {
                match fence_at(prev_instr[i]) {
                    Some(scope) => AccessKind::Release(scope),
                    None => AccessKind::Write,
                }
            }
            Op::Atom { space, op, .. } | Op::Red { space, op, .. } if tracked(*space) => {
                let before = fence_at(prev_instr[i]);
                let after = fence_at(next_instr[i]);
                match (before, after, op) {
                    (Some(b), Some(a), _) => AccessKind::AcquireRelease(stronger(b, a)),
                    // atom.cas obtains a lock: cas + following fence is an
                    // acquire.
                    (None, Some(a), AtomOp::Cas) => AccessKind::Acquire(a),
                    // atom.exch frees a lock: fence + exch is a release.
                    (Some(b), None, AtomOp::Exch) => AccessKind::Release(b),
                    // A one-sided fence on other atomics still orders the
                    // fenced side; conservatively treat as the fenced half.
                    (None, Some(a), _) => AccessKind::Acquire(a),
                    (Some(b), None, _) => AccessKind::Release(b),
                    (None, None, _) => AccessKind::Atomic,
                }
            }
            _ => continue,
        };
        out.push(InferredKind { stmt: i, kind });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(body: &str) -> Vec<AccessKind> {
        let src = format!(
            ".version 4.3\n.target sm_35\n.address_size 64\n.visible .entry k(.param .u64 p)\n{{\n\
             .reg .pred %pp;\n.reg .b32 %r<8>;\n.reg .b64 %rd<8>;\n{body}\n}}"
        );
        let m = barracuda_ptx::parse(&src).unwrap();
        infer_kinds(&m.kernels[0])
            .into_iter()
            .map(|k| k.kind)
            .collect()
    }

    #[test]
    fn plain_load_store() {
        assert_eq!(
            kinds("ld.global.u32 %r1, [%rd1];\nst.global.u32 [%rd1], %r1;\nret;"),
            vec![AccessKind::Read, AccessKind::Write]
        );
    }

    #[test]
    fn param_and_local_not_tracked() {
        assert_eq!(
            kinds("ld.param.u64 %rd1, [p];\nld.local.u32 %r1, [%rd1];\nst.local.u32 [%rd1], %r1;\nret;"),
            vec![]
        );
    }

    #[test]
    fn fence_store_is_release_with_fence_scope() {
        assert_eq!(
            kinds("membar.cta;\nst.global.u32 [%rd1], 1;\nret;"),
            vec![AccessKind::Release(Scope::Block)]
        );
        assert_eq!(
            kinds("membar.gl;\nst.global.u32 [%rd1], 1;\nret;"),
            vec![AccessKind::Release(Scope::Global)]
        );
        assert_eq!(
            kinds("membar.sys;\nst.global.u32 [%rd1], 1;\nret;"),
            vec![AccessKind::Release(Scope::Global)],
            "system fences treated as global"
        );
    }

    #[test]
    fn load_fence_is_acquire() {
        assert_eq!(
            kinds("ld.global.u32 %r1, [%rd1];\nmembar.gl;\nret;"),
            vec![AccessKind::Acquire(Scope::Global)]
        );
    }

    #[test]
    fn fenced_atomic_is_acquire_release() {
        assert_eq!(
            kinds("membar.cta;\natom.global.add.u32 %r1, [%rd1], 1;\nmembar.cta;\nret;"),
            vec![AccessKind::AcquireRelease(Scope::Block)]
        );
        // Mixed fence scopes take the stronger.
        assert_eq!(
            kinds("membar.cta;\natom.global.add.u32 %r1, [%rd1], 1;\nmembar.gl;\nret;"),
            vec![AccessKind::AcquireRelease(Scope::Global)]
        );
    }

    #[test]
    fn lock_idioms() {
        // cas + fence = lock acquire.
        assert_eq!(
            kinds("atom.global.cas.b32 %r1, [%rd1], 0, 1;\nmembar.gl;\nret;"),
            vec![AccessKind::Acquire(Scope::Global)]
        );
        // fence + exch = lock release.
        assert_eq!(
            kinds("membar.gl;\natom.global.exch.b32 %r1, [%rd1], 0;\nret;"),
            vec![AccessKind::Release(Scope::Global)]
        );
    }

    #[test]
    fn standalone_atomic_is_atm() {
        assert_eq!(
            kinds("atom.global.add.u32 %r1, [%rd1], 1;\nret;"),
            vec![AccessKind::Atomic]
        );
        assert_eq!(
            kinds("atom.shared.cas.b32 %r1, [%rd1], 0, 1;\nret;"),
            vec![AccessKind::Atomic],
            "unfenced cas is a plain atomic"
        );
        assert_eq!(
            kinds("red.global.add.u32 [%rd1], %r1;\nret;"),
            vec![AccessKind::Atomic]
        );
    }

    #[test]
    fn labels_break_adjacency() {
        // A label between fence and store breaks the static bundle: other
        // control flow may reach the store without the fence.
        assert_eq!(
            kinds("membar.gl;\nL:\nst.global.u32 [%rd1], 1;\nret;"),
            vec![AccessKind::Write]
        );
    }

    #[test]
    fn terminators_break_adjacency() {
        assert_eq!(
            kinds("ld.global.u32 %r1, [%rd1];\nbra.uni L;\nL:\nmembar.gl;\nret;"),
            vec![AccessKind::Read]
        );
    }

    #[test]
    fn guarded_fence_does_not_bundle() {
        assert_eq!(
            kinds("@%pp membar.gl;\nst.global.u32 [%rd1], 1;\nret;"),
            vec![AccessKind::Write]
        );
    }

    #[test]
    fn fence_binds_both_sides() {
        // ld; membar; st — the fence makes the load an acquire AND the
        // store a release.
        assert_eq!(
            kinds("ld.global.u32 %r1, [%rd1];\nmembar.gl;\nst.global.u32 [%rd2], %r1;\nret;"),
            vec![
                AccessKind::Acquire(Scope::Global),
                AccessKind::Release(Scope::Global)
            ]
        );
    }

    #[test]
    fn generic_space_is_tracked() {
        assert_eq!(kinds("ld.u32 %r1, [%rd1];\nret;"), vec![AccessKind::Read]);
    }
}
