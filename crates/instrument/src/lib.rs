//! The BARRACUDA binary instrumentation framework (paper §4.1).
//!
//! Operates on parsed PTX modules and rewrites them so that every memory
//! and synchronization operation reaches the race detector:
//!
//! * **Acquire/release inference** ([`infer`]): a store immediately
//!   preceded by a memory fence becomes a release; a load immediately
//!   followed by a fence becomes an acquire; a fenced atomic becomes an
//!   acquire-release; `atom.cas` + following fence is a lock acquire and
//!   `atom.exch` + preceding fence a lock release; the fence kind
//!   (`membar.cta` vs `membar.gl`/`.sys`) selects block or global scope.
//! * **Logging-call insertion** ([`rewrite`]): each logged instruction
//!   gets a `call.uni __barracuda_log_access, (kind, space, size, base,
//!   offset[, value])` call-site; predicated instructions are transformed
//!   into a branch plus a non-predicated instruction so the call is
//!   covered by the branch; branch convergence points receive
//!   `__barracuda_log_conv` markers.
//! * **Redundancy pruning** ([`rewrite`]): repeated same-kind accesses to
//!   the same address expression within a basic block — with no
//!   intervening synchronization or redefinition of the address register —
//!   are logged once (the intra-basic-block optimization of §4.1,
//!   RedCard-style).
//!
//! The unique-TID computation of the paper is injected at kernel entry
//! (the simulator derives TIDs itself, but the extra instructions keep the
//! instrumented instruction stream faithful for overhead measurements).
//!
//! # Example
//!
//! ```
//! use barracuda_instrument::{instrument_module, InstrumentOptions};
//!
//! let module = barracuda_ptx::parse(r#"
//!     .version 4.3
//!     .target sm_35
//!     .address_size 64
//!     .visible .entry k(.param .u64 p)
//!     {
//!         .reg .b32 %r<4>;
//!         .reg .b64 %rd<4>;
//!         ld.param.u64 %rd1, [p];
//!         st.global.u32 [%rd1], 1;
//!         membar.gl;
//!         st.global.u32 [%rd1+4], 1;
//!         ret;
//!     }
//! "#).unwrap();
//! let (instrumented, stats) = instrument_module(&module, &InstrumentOptions::default());
//! assert_eq!(stats.releases, 1); // fence + store = release
//! assert!(stats.log_calls >= 2);
//! assert!(barracuda_ptx::printer::print_module(&instrumented).contains("__barracuda_log_access"));
//! ```

#![warn(missing_docs)]

pub mod infer;
pub mod rewrite;

pub use infer::{infer_kinds, InferredKind};
pub use rewrite::{instrument_kernel, instrument_module, InstrumentOptions, InstrumentStats};
