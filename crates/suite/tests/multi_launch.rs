//! Verdicts for the multi-launch / host-interaction program family: every
//! program must match its ground truth, and every reported race must carry
//! the engine's new inter-kernel or host-device classification.

use barracuda_suite::{multi_programs, run_multi, run_multi_races, Expectation, Verdict};

#[test]
fn multi_family_has_racy_and_race_free_programs() {
    let ps = multi_programs();
    assert!(ps.len() >= 8, "family has {} programs", ps.len());
    let racy = ps
        .iter()
        .filter(|p| p.expected == Expectation::Race)
        .count();
    let clean = ps
        .iter()
        .filter(|p| p.expected == Expectation::NoRace)
        .count();
    assert!(racy >= 3, "{racy} racy programs");
    assert!(clean >= 3, "{clean} race-free programs");
    let names: std::collections::HashSet<_> = ps.iter().map(|p| p.name).collect();
    assert_eq!(names.len(), ps.len(), "names are unique");
}

#[test]
fn all_multi_programs_match_their_expectation() {
    let mut failures = Vec::new();
    for p in multi_programs() {
        let got = run_multi(&p);
        let ok = matches!(
            (&got, p.expected),
            (Verdict::Race, Expectation::Race) | (Verdict::NoRace, Expectation::NoRace)
        );
        if !ok {
            failures.push(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, got
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn racy_multi_programs_carry_the_expected_class() {
    for p in multi_programs() {
        let Some(class) = p.class else { continue };
        let races = run_multi_races(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(!races.is_empty(), "{} reported no races", p.name);
        for r in &races {
            assert_eq!(r.class, class, "{}: {r}", p.name);
        }
    }
}
