//! Chaos differential testing: every suite program must produce the same
//! verdict under the synchronous reference pipeline and under the
//! threaded pipeline with an aggressive (but lossless) stall-only fault
//! plan, across several seeds.
//!
//! Stall-only chaos perturbs *timing* — consumers sleep, queues fill,
//! producers block on backpressure — but never loses records, so any
//! verdict divergence is a real pipeline bug (lost ordering, dropped
//! records, broken merge), not an artifact of the fault plan.

use barracuda::{BarracudaConfig, DetectionMode, FaultPlan, GpuConfig};
use barracuda_suite::{all_programs, run_program_with, Verdict};

/// Threaded config under stall-only chaos: few queues, tiny capacity, so
/// backpressure actually engages on the suite's small record streams.
fn chaos_config(seed: u64) -> BarracudaConfig {
    BarracudaConfig {
        mode: DetectionMode::Threaded,
        gpu: GpuConfig {
            num_sms: 4,
            ..GpuConfig::default()
        },
        queues_per_sm: 1.0,
        queue_capacity: 64,
        fault_plan: Some(FaultPlan::stalls_only(seed)),
        ..BarracudaConfig::default()
    }
}

#[test]
fn every_program_agrees_between_sync_and_chaotic_threaded() {
    let programs = all_programs();
    let mut mismatches = Vec::new();
    for p in &programs {
        let reference = run_program_with(p, BarracudaConfig::default());
        assert!(
            !matches!(reference, Verdict::Error(_)),
            "{}: reference run errored: {reference:?}",
            p.name
        );
        for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
            let chaotic = run_program_with(p, chaos_config(seed));
            if chaotic != reference {
                mismatches.push(format!(
                    "{} seed={seed:#x}: sync={reference:?} chaotic={chaotic:?}",
                    p.name
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "verdict divergence under stall-only chaos:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn stall_only_chaos_is_lossless_on_a_representative_program() {
    // The differential test compares verdicts; this one pins the reason
    // the comparison is fair — a stall-only plan must not shed records.
    use barracuda::{Barracuda, KernelRun};
    use barracuda_simt::ParamValue;
    use barracuda_suite::{program, KERNEL};

    let p = program("global_ww_interblock_race").expect("suite program exists");
    let mut bar = Barracuda::with_config(chaos_config(7));
    let mut params = Vec::new();
    for a in &p.args {
        match a {
            barracuda_suite::ArgSpec::Buf(bytes) => {
                params.push(ParamValue::Ptr(bar.gpu_mut().malloc(*bytes)))
            }
            barracuda_suite::ArgSpec::U32(v) => params.push(ParamValue::U32(*v)),
        }
    }
    let a = bar
        .check(&KernelRun {
            source: &p.source,
            kernel: KERNEL,
            dims: p.dims,
            params: &params,
        })
        .unwrap();
    let pipe = &a.stats().pipeline;
    assert!(pipe.is_lossless(), "{pipe:?}");
    assert!(!a.is_degraded());
}
