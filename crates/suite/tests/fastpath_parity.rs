//! Fast-path parity over the full verdict suite: every one of the 66
//! single-kernel programs must produce its expected verdict with the
//! warp-coalesced shadow fast paths *disabled* (`detector_fast_paths:
//! false`, the paper-literal per-byte sweep), in both pipeline modes.
//!
//! Together with `engine_backcompat` (which pins the same 66 verdicts on
//! the default fast-path configuration), this asserts end-to-end that the
//! batched and per-byte detectors agree on every program in the suite.

use barracuda::{BarracudaConfig, DetectionMode};
use barracuda_suite::{all_programs, run_program_with, Expectation, Verdict};

fn expectation_matches(v: &Verdict, e: Expectation) -> bool {
    matches!(
        (v, e),
        (Verdict::Race, Expectation::Race)
            | (Verdict::NoRace, Expectation::NoRace)
            | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
    )
}

fn pin_all_slow(mode: DetectionMode) {
    let ps = all_programs();
    assert_eq!(ps.len(), 66);
    let mut failures = Vec::new();
    for p in &ps {
        let config = BarracudaConfig {
            mode,
            detector_fast_paths: false,
            ..BarracudaConfig::default()
        };
        let got = run_program_with(p, config);
        if !expectation_matches(&got, p.expected) {
            failures.push(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, got
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "slow-path detector changed {} suite verdicts ({mode:?}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn all_66_verdicts_unchanged_with_fast_paths_off_sync() {
    pin_all_slow(DetectionMode::Synchronous);
}

#[test]
fn all_66_verdicts_unchanged_with_fast_paths_off_threaded() {
    pin_all_slow(DetectionMode::Threaded);
}
