//! Sharded-routing parity over the full verdict suite: every one of the
//! 66 single-kernel programs must produce its expected verdict with
//! page-hash record routing enabled (`sharded_routing: true` — plain
//! global accesses page-partitioned across owner workers, sync/control
//! records replicated to every queue), with the shadow fast paths both
//! on and off.
//!
//! Together with `fastpath_parity` and `engine_backcompat`, this pins
//! end-to-end that the sharded and unified pipelines agree on every
//! program in the suite.

use barracuda::{BarracudaConfig, DetectionMode};
use barracuda_suite::{all_programs, run_program_with, Expectation, Verdict};

fn expectation_matches(v: &Verdict, e: Expectation) -> bool {
    matches!(
        (v, e),
        (Verdict::Race, Expectation::Race)
            | (Verdict::NoRace, Expectation::NoRace)
            | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
    )
}

fn pin_all_sharded(fast_paths: bool) {
    let ps = all_programs();
    assert_eq!(ps.len(), 66);
    let mut failures = Vec::new();
    for p in &ps {
        let config = BarracudaConfig {
            mode: DetectionMode::Threaded,
            sharded_routing: true,
            detector_fast_paths: fast_paths,
            ..BarracudaConfig::default()
        };
        let got = run_program_with(p, config);
        if !expectation_matches(&got, p.expected) {
            failures.push(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, got
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "sharded routing changed {} suite verdicts (fast_paths={fast_paths}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn all_66_verdicts_unchanged_with_sharded_routing() {
    pin_all_sharded(true);
}

#[test]
fn all_66_verdicts_unchanged_with_sharded_routing_slow_paths() {
    pin_all_sharded(false);
}
