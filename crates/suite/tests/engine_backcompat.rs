//! Back-compat pinning: the persistent engine behind `Barracuda::check`
//! must reproduce the exact verdict of every one of the 66 single-kernel
//! suite programs, in both detection modes, and sequential independent
//! launches on one engine must not contaminate each other's reports.

use barracuda::{Barracuda, BarracudaConfig, DetectionMode, KernelRun};
use barracuda_simt::ParamValue;
use barracuda_suite::{
    all_programs, program, run_program_with, ArgSpec, Expectation, SuiteProgram, Verdict, KERNEL,
};

fn expectation_matches(v: &Verdict, e: Expectation) -> bool {
    matches!(
        (v, e),
        (Verdict::Race, Expectation::Race)
            | (Verdict::NoRace, Expectation::NoRace)
            | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
    )
}

fn pin_all(mode: DetectionMode) {
    let ps = all_programs();
    assert_eq!(ps.len(), 66);
    let mut failures = Vec::new();
    for p in &ps {
        let config = BarracudaConfig {
            mode,
            ..BarracudaConfig::default()
        };
        let got = run_program_with(p, config);
        if !expectation_matches(&got, p.expected) {
            failures.push(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, got
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "engine changed {} suite verdicts ({mode:?}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn all_66_verdicts_unchanged_through_engine_sync() {
    pin_all(DetectionMode::Synchronous);
}

#[test]
fn all_66_verdicts_unchanged_through_engine_threaded() {
    pin_all(DetectionMode::Threaded);
}

/// Runs one suite program on an existing session (fresh buffers, same
/// persistent detector state) and returns the observed race count.
fn run_on(bar: &mut Barracuda, p: &SuiteProgram) -> usize {
    let mut params = Vec::with_capacity(p.args.len());
    for a in &p.args {
        match a {
            ArgSpec::Buf(bytes) => params.push(ParamValue::Ptr(bar.gpu_mut().malloc(*bytes))),
            ArgSpec::U32(v) => params.push(ParamValue::U32(*v)),
        }
    }
    let run = KernelRun {
        source: &p.source,
        kernel: KERNEL,
        dims: p.dims,
        params: &params,
    };
    bar.check(&run).expect("launch failed").race_count()
}

#[test]
fn sequential_independent_launches_do_not_cross_contaminate() {
    // A racy program followed by a race-free one on the SAME engine: the
    // second launch touches disjoint buffers, so the persistent shadow
    // state from the first launch must not leak any report into it.
    let racy = program("global_ww_interblock_race").unwrap();
    let clean = program("global_flag_gl_fences_norace").unwrap();
    let mut bar = Barracuda::new();
    assert!(run_on(&mut bar, &racy) > 0, "first launch should race");
    assert_eq!(run_on(&mut bar, &clean), 0, "clean launch inherited races");
    // And the other way around: a clean launch first must not suppress
    // the racy launch's reports.
    let mut bar = Barracuda::new();
    assert_eq!(run_on(&mut bar, &clean), 0);
    assert!(run_on(&mut bar, &racy) > 0, "racy launch lost its races");
    // Same racy program twice: each run re-reports its own races.
    let mut bar = Barracuda::new();
    let first = run_on(&mut bar, &racy);
    let second = run_on(&mut bar, &racy);
    assert!(first > 0 && second > 0, "dedup leaked across launches");
}
