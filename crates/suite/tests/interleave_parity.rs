//! Co-resident interleaving parity over the full suite: deferring every
//! launch into the shared warp scheduler must not change a single
//! verdict. All 66 single-kernel programs re-pin their expected verdicts
//! and all 11 multi-launch programs produce *exactly* the eager race
//! set, under every scheduling policy (round-robin, seeded random,
//! adversarial starve-one × 3 seeds), through both the synchronous and
//! the threaded (sharded) detection pipelines.
//!
//! This is the headline guarantee of the co-resident scheduler: verdicts
//! are a function of the program and its happens-before structure —
//! frozen at launch registration — never of the schedule.

use std::collections::BTreeSet;

use barracuda::{BarracudaConfig, DetectionMode, RaceReport, SchedPolicy};
use barracuda_suite::{
    all_programs, multi_programs, run_multi_races, run_multi_races_with, run_program_with,
    Expectation, Verdict,
};
use barracuda_trace::ops::MemSpace;

const POLICIES: [SchedPolicy; 7] = [
    SchedPolicy::RoundRobin,
    SchedPolicy::Random(1),
    SchedPolicy::Random(42),
    SchedPolicy::Random(0xdead_beef),
    SchedPolicy::StarveOne(0),
    SchedPolicy::StarveOne(1),
    SchedPolicy::StarveOne(2),
];

fn interleave_config(policy: SchedPolicy, mode: DetectionMode) -> BarracudaConfig {
    let mut config = BarracudaConfig {
        mode,
        interleave_kernels: true,
        scheduler: policy,
        ..BarracudaConfig::default()
    };
    if mode == DetectionMode::Threaded {
        config.sharded_routing = true;
    }
    // Small worker pool: this harness spins up hundreds of engines.
    config.gpu.num_sms = 4;
    config
}

fn expectation_matches(v: &Verdict, e: Expectation) -> bool {
    matches!(
        (v, e),
        (Verdict::Race, Expectation::Race)
            | (Verdict::NoRace, Expectation::NoRace)
            | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
    )
}

fn pin_all_verdicts(mode: DetectionMode) {
    let ps = all_programs();
    assert_eq!(ps.len(), 66);
    let mut failures = Vec::new();
    for policy in POLICIES {
        for p in &ps {
            let got = run_program_with(p, interleave_config(policy, mode));
            if !expectation_matches(&got, p.expected) {
                failures.push(format!(
                    "{} under {policy:?}: expected {:?}, got {got:?}",
                    p.name, p.expected
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "interleaving changed {} suite verdicts ({mode:?}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn all_66_verdicts_unchanged_under_interleaving_sync() {
    pin_all_verdicts(DetectionMode::Synchronous);
}

#[test]
fn all_66_verdicts_unchanged_under_interleaving_threaded_sharded() {
    pin_all_verdicts(DetectionMode::Threaded);
}

/// `(space, block, addr)` — the race identity compared across schedules.
type RaceKey = (u8, u64, u64);

fn race_set(reports: &[RaceReport]) -> BTreeSet<RaceKey> {
    reports
        .iter()
        .map(|r| {
            (
                match r.space {
                    MemSpace::Global => 0u8,
                    MemSpace::Shared => 1,
                },
                r.block.unwrap_or(0),
                r.addr,
            )
        })
        .collect()
}

fn pin_multi_race_sets(mode: DetectionMode) {
    let ps = multi_programs();
    assert_eq!(ps.len(), 11);
    let mut failures = Vec::new();
    for p in &ps {
        let eager = race_set(&run_multi_races(p).unwrap_or_else(|e| panic!("{}: {e}", p.name)));
        for policy in POLICIES {
            let got = match run_multi_races_with(p, interleave_config(policy, mode)) {
                Ok(races) => race_set(&races),
                Err(e) => {
                    failures.push(format!("{} under {policy:?}: error {e}", p.name));
                    continue;
                }
            };
            if got != eager {
                failures.push(format!(
                    "{} under {policy:?}: eager {eager:?} vs interleaved {got:?}",
                    p.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "interleaving changed {} multi-launch race sets ({mode:?}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn all_11_multi_race_sets_equal_eager_sync() {
    pin_multi_race_sets(DetectionMode::Synchronous);
}

#[test]
fn all_11_multi_race_sets_equal_eager_threaded_sharded() {
    pin_multi_race_sets(DetectionMode::Threaded);
}
