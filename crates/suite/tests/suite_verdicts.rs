//! BARRACUDA must report the correct verdict for all 66 suite programs
//! (paper §6.1: "BARRACUDA reports races (or the absence of a race)
//! correctly for all 66 of our tests").

use barracuda_suite::{all_programs, run_program, Expectation, Verdict};

#[test]
fn barracuda_correct_on_all_66_programs() {
    let mut failures = Vec::new();
    for p in all_programs() {
        let verdict = run_program(&p);
        let ok = matches!(
            (&verdict, p.expected),
            (Verdict::Race, Expectation::Race)
                | (Verdict::NoRace, Expectation::NoRace)
                | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
        );
        if !ok {
            failures.push(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, verdict
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of 66 programs misreported:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Race-class spot checks: the classification of §4.3.3 must land in the
/// right hierarchy bucket for representative programs.
#[test]
fn race_classes_match_program_structure() {
    use barracuda::{Barracuda, KernelRun, RaceClass};
    use barracuda_simt::ParamValue;
    let cases = [
        ("branch_ordering_race", RaceClass::Divergence),
        ("global_diffvalue_intrawarp_race", RaceClass::IntraWarp),
        ("shared_ww_interwarp_race", RaceClass::IntraBlock),
        ("global_ww_interblock_race", RaceClass::InterBlock),
    ];
    for (name, expected_class) in cases {
        let p = barracuda_suite::program(name).expect("known program");
        let mut bar = Barracuda::new();
        let params: Vec<ParamValue> = p
            .args
            .iter()
            .map(|a| match a {
                barracuda_suite::ArgSpec::Buf(b) => ParamValue::Ptr(bar.gpu_mut().malloc(*b)),
                barracuda_suite::ArgSpec::U32(v) => ParamValue::U32(*v),
            })
            .collect();
        let analysis = bar
            .check(&KernelRun {
                source: &p.source,
                kernel: barracuda_suite::KERNEL,
                dims: p.dims,
                params: &params,
            })
            .expect("runs");
        assert!(
            analysis.races().iter().any(|r| r.class == expected_class),
            "{name}: expected a {expected_class:?} race, got {:?}",
            analysis.races()
        );
    }
}
