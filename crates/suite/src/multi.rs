//! Multi-launch programs: inter-kernel and host↔device races.
//!
//! Unlike the 66 single-kernel programs, each [`MultiProgram`] is a small
//! *host program* — a sequence of kernel launches on CUDA streams, async
//! memcpys, and synchronization calls — run against one persistent
//! detection [`Engine`]. These exercise happens-before edges that only
//! exist because the engine's shadow memory and synchronization-location
//! map survive across launches: write-write conflicts between kernels on
//! different streams, host memcpys racing with in-flight kernels, and
//! flag handoffs whose release happened in an *earlier* launch.

use crate::{module_src, Expectation, KERNEL, LIN_TID};
use barracuda::{BarracudaConfig, Engine, Error, KernelRun, RaceClass, RaceReport, StreamId};
use barracuda_simt::ParamValue;
use barracuda_trace::GridDims;

/// A kernel used by a multi-launch program.
#[derive(Debug, Clone)]
pub struct MultiKernel {
    /// Full PTX module source with entry [`KERNEL`].
    pub source: String,
    /// Launch dimensions.
    pub dims: GridDims,
    /// Arguments; `Buf(i)` is the i-th program buffer.
    pub args: Vec<MultiArg>,
}

/// Argument of a [`MultiKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiArg {
    /// Pointer to the i-th buffer of the program.
    Buf(usize),
    /// A scalar.
    U32(u32),
}

/// One step of a multi-launch program's host timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiStep {
    /// Launch `kernels[kernel]` on the stream.
    Launch {
        /// Stream index (0 is the default stream).
        stream: u32,
        /// Index into [`MultiProgram::kernels`].
        kernel: usize,
    },
    /// Async host→device copy of `bytes` bytes into the buffer's base.
    H2D {
        /// Stream index.
        stream: u32,
        /// Index into [`MultiProgram::buffers`].
        buf: usize,
        /// Bytes to copy.
        bytes: u64,
    },
    /// Async device→host copy of `bytes` bytes from the buffer's base.
    D2H {
        /// Stream index.
        stream: u32,
        /// Index into [`MultiProgram::buffers`].
        buf: usize,
        /// Bytes to copy.
        bytes: u64,
    },
    /// `cudaStreamSynchronize`.
    SyncStream {
        /// Stream index.
        stream: u32,
    },
    /// `cudaDeviceSynchronize`.
    SyncDevice,
}

/// A multi-launch / host-interaction program with its expected verdict.
#[derive(Debug, Clone)]
pub struct MultiProgram {
    /// Unique program name.
    pub name: &'static str,
    /// What the program exhibits.
    pub description: &'static str,
    /// Device buffer sizes (zero-initialized allocations).
    pub buffers: Vec<u64>,
    /// Streams beyond the default stream; steps may use ids `0..=extra_streams`.
    pub extra_streams: u32,
    /// Kernels the steps launch.
    pub kernels: Vec<MultiKernel>,
    /// The host timeline.
    pub steps: Vec<MultiStep>,
    /// Ground-truth verdict ([`Expectation::Race`] or [`Expectation::NoRace`]).
    pub expected: Expectation,
    /// When racy: the class every reported race must carry.
    pub class: Option<RaceClass>,
}

/// Runs a multi-launch program on one persistent engine and returns every
/// race reported across the whole host timeline.
pub fn run_multi_races(p: &MultiProgram) -> Result<Vec<RaceReport>, Error> {
    run_multi_races_with(p, BarracudaConfig::default())
}

/// Like [`run_multi_races`] with an explicit engine configuration — the
/// entry point of the interleave-parity harness, which replays every
/// program under co-resident scheduling and compares race sets against
/// the eager default. A trailing [`Engine::flush_pending`] picks up
/// launches still deferred when the timeline ends (programs that end
/// without a synchronization step).
pub fn run_multi_races_with(p: &MultiProgram, config: BarracudaConfig) -> Result<Vec<RaceReport>, Error> {
    let mut eng = Engine::with_config(config);
    for _ in 0..p.extra_streams {
        eng.create_stream();
    }
    let bufs: Vec<_> = p.buffers.iter().map(|b| eng.gpu_mut().malloc(*b)).collect();
    let mut races = Vec::new();
    for step in &p.steps {
        match *step {
            MultiStep::Launch { stream, kernel } => {
                let k = &p.kernels[kernel];
                let params: Vec<ParamValue> = k
                    .args
                    .iter()
                    .map(|a| match *a {
                        MultiArg::Buf(i) => ParamValue::Ptr(bufs[i]),
                        MultiArg::U32(v) => ParamValue::U32(v),
                    })
                    .collect();
                let run = KernelRun {
                    source: &k.source,
                    kernel: KERNEL,
                    dims: k.dims,
                    params: &params,
                };
                races.extend(eng.launch_async(StreamId(stream), &run)?.races().to_vec());
            }
            MultiStep::H2D { stream, buf, bytes } => {
                let data = vec![0xabu8; bytes as usize];
                races.extend(eng.memcpy_h2d(StreamId(stream), bufs[buf], &data)?);
            }
            MultiStep::D2H { stream, buf, bytes } => {
                let mut out = vec![0u8; bytes as usize];
                races.extend(eng.memcpy_d2h(StreamId(stream), bufs[buf], &mut out)?);
            }
            MultiStep::SyncStream { stream } => {
                races.extend(eng.stream_synchronize(StreamId(stream))?);
            }
            MultiStep::SyncDevice => races.extend(eng.device_synchronize()?),
        }
    }
    races.extend(eng.flush_pending()?);
    Ok(races)
}

/// Runs a multi-launch program and reduces the result to a verdict.
pub fn run_multi(p: &MultiProgram) -> crate::Verdict {
    match run_multi_races(p) {
        Ok(races) if races.is_empty() => crate::Verdict::NoRace,
        Ok(_) => crate::Verdict::Race,
        Err(e) => crate::Verdict::Error(e.to_string()),
    }
}

/// Per-thread disjoint writer: thread i stores to `buf[i]`.
fn writer_kernel(dims: GridDims) -> MultiKernel {
    MultiKernel {
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 mul.wide.u32 %rd2, %r27, 4;\n\
                 add.s64 %rd3, %rd1, %rd2;\n\
                 st.global.u32 [%rd3], %r27;\n\
                 ret;"
            ),
        ),
        dims,
        args: vec![MultiArg::Buf(0)],
    }
}

/// Per-thread disjoint reader: thread i loads `buf[i]`.
fn reader_kernel(dims: GridDims) -> MultiKernel {
    MultiKernel {
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 mul.wide.u32 %rd2, %r27, 4;\n\
                 add.s64 %rd3, %rd1, %rd2;\n\
                 ld.global.u32 %r1, [%rd3];\n\
                 ret;"
            ),
        ),
        dims,
        args: vec![MultiArg::Buf(0)],
    }
}

/// Single-thread producer of a flag handoff: `buf[0]=42; fence; buf[4]=1`.
fn producer_kernel(fence: &str) -> MultiKernel {
    let body = if fence.is_empty() {
        "ld.param.u64 %rd1, [buf];\n\
         st.global.u32 [%rd1], 42;\n\
         st.global.u32 [%rd1+4], 1;\n\
         ret;"
            .to_string()
    } else {
        format!(
            "ld.param.u64 %rd1, [buf];\n\
             st.global.u32 [%rd1], 42;\n\
             {fence};\n\
             st.global.u32 [%rd1+4], 1;\n\
             ret;"
        )
    };
    MultiKernel {
        source: module_src(".param .u64 buf", &body),
        dims: GridDims::new(1u32, 1u32),
        args: vec![MultiArg::Buf(0)],
    }
}

/// Single-thread consumer of a flag handoff: spin on `buf[4]`, then read
/// `buf[0]` and publish it to `buf[8]`.
fn consumer_kernel(fence: &str) -> MultiKernel {
    let fence_line = if fence.is_empty() {
        String::new()
    } else {
        format!("{fence};\n")
    };
    MultiKernel {
        source: module_src(
            ".param .u64 buf",
            &format!(
                "ld.param.u64 %rd1, [buf];\n\
                 L_wait:\n\
                 ld.global.u32 %r1, [%rd1+4];\n\
                 {fence_line}\
                 setp.eq.s32 %p1, %r1, 0;\n\
                 @%p1 bra L_wait;\n\
                 ld.global.u32 %r2, [%rd1];\n\
                 st.global.u32 [%rd1+8], %r2;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(1u32, 1u32),
        args: vec![MultiArg::Buf(0)],
    }
}

/// All multi-launch programs. These are a separate family from
/// [`crate::all_programs`]'s 66 single-kernel programs.
pub fn multi_programs() -> Vec<MultiProgram> {
    let dims = GridDims::new(1u32, 8u32);
    vec![
        MultiProgram {
            name: "multi_xstream_ww_interkernel_race",
            description: "same writer kernel on two streams, overlapping addresses; \
                      the conflict spans launches and is visible only because \
                      shadow memory persists across them",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
            ],
            expected: Expectation::Race,
            class: Some(RaceClass::InterKernel),
        },
        MultiProgram {
            name: "multi_same_stream_ww_norace",
            description: "same writer kernel twice on one stream: stream order is HB",
            buffers: vec![32],
            extra_streams: 0,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_device_sync_cuts_race",
            description: "cross-stream writer conflict separated by cudaDeviceSynchronize",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::SyncDevice,
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_stream_sync_cuts_race",
            description: "cross-stream writer conflict separated by cudaStreamSynchronize \
                      of the first stream",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::SyncStream { stream: 0 },
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_h2d_vs_inflight_kernel_race",
            description: "host memcpy into a buffer a kernel on another stream is writing",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
                MultiStep::H2D {
                    stream: 0,
                    buf: 0,
                    bytes: 32,
                },
            ],
            expected: Expectation::Race,
            class: Some(RaceClass::HostDevice),
        },
        MultiProgram {
            name: "multi_h2d_after_stream_sync_norace",
            description: "host memcpy after synchronizing the writing stream",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
                MultiStep::SyncStream { stream: 1 },
                MultiStep::H2D {
                    stream: 0,
                    buf: 0,
                    bytes: 32,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_d2h_vs_inflight_kernel_race",
            description: "host readback of a buffer a kernel on another stream is writing",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![writer_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
                MultiStep::D2H {
                    stream: 0,
                    buf: 0,
                    bytes: 32,
                },
            ],
            expected: Expectation::Race,
            class: Some(RaceClass::HostDevice),
        },
        MultiProgram {
            name: "multi_h2d_then_launch_read_norace",
            description: "kernel reads a buffer the host populated before the launch: \
                      launches are ordered after prior host operations",
            buffers: vec![32],
            extra_streams: 1,
            kernels: vec![reader_kernel(dims)],
            steps: vec![
                MultiStep::H2D {
                    stream: 0,
                    buf: 0,
                    bytes: 32,
                },
                MultiStep::Launch {
                    stream: 1,
                    kernel: 0,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_flag_handoff_across_launches_norace",
            description: "producer kernel releases a flag with membar.gl; a later \
                      consumer launch on another stream acquires it — HB exists \
                      only because sync locations persist across launches",
            buffers: vec![12],
            extra_streams: 1,
            kernels: vec![producer_kernel("membar.gl"), consumer_kernel("membar.gl")],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::Launch {
                    stream: 1,
                    kernel: 1,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
        MultiProgram {
            name: "multi_flag_handoff_no_fence_race",
            description: "the same cross-launch handoff without fences: plain flag \
                      accesses do not synchronize, so the data transfer races",
            buffers: vec![12],
            extra_streams: 1,
            kernels: vec![producer_kernel(""), consumer_kernel("")],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::Launch {
                    stream: 1,
                    kernel: 1,
                },
            ],
            expected: Expectation::Race,
            class: Some(RaceClass::InterKernel),
        },
        MultiProgram {
            name: "multi_parallel_readers_norace",
            description: "one writer launch, device sync, then concurrent read-only \
                      launches on two streams: reads never conflict",
            buffers: vec![32],
            extra_streams: 2,
            kernels: vec![writer_kernel(dims), reader_kernel(dims)],
            steps: vec![
                MultiStep::Launch {
                    stream: 0,
                    kernel: 0,
                },
                MultiStep::SyncDevice,
                MultiStep::Launch {
                    stream: 1,
                    kernel: 1,
                },
                MultiStep::Launch {
                    stream: 2,
                    kernel: 1,
                },
            ],
            expected: Expectation::NoRace,
            class: None,
        },
    ]
}

/// Looks up a multi-launch program by name.
pub fn multi_program(name: &str) -> Option<MultiProgram> {
    multi_programs().into_iter().find(|p| p.name == name)
}
