//! Global-memory race and race-free programs, including flag
//! synchronization with every fence-scope combination (paper §3.3.4).

use crate::{module_src, ArgSpec, Expectation, SuiteProgram, LIN_TID};
use barracuda_trace::GridDims;

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "global_ww_interblock_race",
        description: "thread 0 of each block writes the same global word",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 setp.ne.s32 %p1, %r30, 0;\n\
                 @%p1 bra L_end;\n\
                 add.s32 %r1, %r29, 1;\n\
                 st.global.u32 [%rd1], %r1;\n\
                 L_end:\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "global_rw_interblock_race",
        description: "block 0 writes a global word block 1 reads",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 setp.ne.s32 %p1, %r30, 0;\n\
                 @%p1 bra L_end;\n\
                 setp.eq.s32 %p2, %r29, 0;\n\
                 @!%p2 bra L_read;\n\
                 st.global.u32 [%rd1], 7;\n\
                 bra.uni L_end;\n\
                 L_read:\n\
                 ld.global.u32 %r2, [%rd1];\n\
                 st.global.u32 [%rd1+4], %r2;\n\
                 L_end:\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "global_disjoint_norace",
        description: "every thread writes its own element",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 mul.wide.s32 %rd2, %r27, 4;\n\
                 add.s64 %rd3, %rd1, %rd2;\n\
                 st.global.u32 [%rd3], %r27;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_readonly_norace",
        description: "every thread reads the same word, writes its own",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 ld.global.u32 %r1, [%rd1];\n\
                 mul.wide.s32 %rd2, %r27, 4;\n\
                 add.s64 %rd3, %rd1, %rd2;\n\
                 st.global.u32 [%rd3+4], %r1;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(65 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_atomic_counter_norace",
        description: "all threads atomically increment one counter",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             atom.global.add.u32 %r1, [%rd1], 1;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_atomic_vs_write_race",
        description: "atomic RMW in one block, plain store in another",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 setp.ne.s32 %p1, %r30, 0;\n\
                 @%p1 bra L_end;\n\
                 setp.eq.s32 %p2, %r29, 0;\n\
                 @!%p2 bra L_st;\n\
                 atom.global.add.u32 %r1, [%rd1], 1;\n\
                 bra.uni L_end;\n\
                 L_st:\n\
                 st.global.u32 [%rd1], 5;\n\
                 L_end:\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "global_atomic_vs_read_race",
        description: "atomic RMW in one block, plain load in another",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 setp.ne.s32 %p1, %r30, 0;\n\
                 @%p1 bra L_end;\n\
                 setp.eq.s32 %p2, %r29, 0;\n\
                 @!%p2 bra L_rd;\n\
                 atom.global.add.u32 %r1, [%rd1], 1;\n\
                 bra.uni L_end;\n\
                 L_rd:\n\
                 ld.global.u32 %r2, [%rd1];\n\
                 st.global.u32 [%rd1+4], %r2;\n\
                 L_end:\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    // Flag synchronization: buf[0]=data, buf[4]=flag, buf[8]=out.
    let flag_kernel = |producer_fence: &str, consumer_fence: &str| {
        module_src(
            ".param .u64 buf",
            &format!(
                "ld.param.u64 %rd1, [buf];\n\
                 mov.u32 %r29, %ctaid.x;\n\
                 setp.eq.s32 %p1, %r29, 0;\n\
                 @!%p1 bra L_consumer;\n\
                 st.global.u32 [%rd1], 42;\n\
                 {producer_fence};\n\
                 st.global.u32 [%rd1+4], 1;\n\
                 ret;\n\
                 L_consumer:\n\
                 L_wait:\n\
                 ld.global.u32 %r1, [%rd1+4];\n\
                 {consumer_fence};\n\
                 setp.eq.s32 %p2, %r1, 0;\n\
                 @%p2 bra L_wait;\n\
                 ld.global.u32 %r2, [%rd1];\n\
                 st.global.u32 [%rd1+8], %r2;\n\
                 ret;"
            ),
        )
    };

    v.push(SuiteProgram {
        name: "global_flag_gl_fences_norace",
        description: "message passing across blocks with membar.gl on both sides",
        source: flag_kernel("membar.gl", "membar.gl"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_flag_cta_fences_race",
        description: "membar.cta is insufficient across blocks (Fig. 4)",
        source: flag_kernel("membar.cta", "membar.cta"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "global_flag_no_fence_race",
        description: "flag synchronization without any fences",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_consumer;\n\
             st.global.u32 [%rd1], 42;\n\
             st.global.u32 [%rd1+4], 1;\n\
             ret;\n\
             L_consumer:\n\
             L_wait:\n\
             ld.global.u32 %r1, [%rd1+4];\n\
             setp.eq.s32 %p2, %r1, 0;\n\
             @%p2 bra L_wait;\n\
             ld.global.u32 %r2, [%rd1];\n\
             st.global.u32 [%rd1+8], %r2;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "global_flag_rel_cta_acq_gl_norace",
        description:
            "block-scope release + global-scope acquire synchronizes (ACQGLOBAL joins all slots)",
        source: flag_kernel("membar.cta", "membar.gl"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_flag_rel_gl_acq_cta_norace",
        description:
            "global-scope release + block-scope acquire synchronizes (RELGLOBAL sets all slots)",
        source: flag_kernel("membar.gl", "membar.cta"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_samevalue_intrawarp_norace",
        description: "all lanes of one warp store the same value to one word (filtered, §3.3.1)",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             st.global.u32 [%rd1], 7;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "global_diffvalue_intrawarp_race",
        description: "lanes of one warp store different values to one word",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             st.global.u32 [%rd1], %r30;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v
}
