//! Lock implementations via `atom.cas`/`atom.exch` and fences (paper
//! §3.1's lock idioms and the §6.3 hashtable bugs).

use crate::{module_src, ArgSpec, Expectation, SuiteProgram};
use barracuda_trace::GridDims;

/// A global spinlock kernel: lock word at `buf[0]`, protected counter at
/// `buf[4]`. `acq_fence` follows the cas; `rel` is the full release
/// sequence.
fn spinlock(acq_fence: &str, rel: &str) -> String {
    module_src(
        ".param .u64 buf",
        &format!(
            "ld.param.u64 %rd1, [buf];\n\
             L_acq:\n\
             atom.global.cas.b32 %r1, [%rd1], 0, 1;\n\
             {acq_fence}\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_acq;\n\
             ld.global.u32 %r2, [%rd1+4];\n\
             add.s32 %r2, %r2, 1;\n\
             st.global.u32 [%rd1+4], %r2;\n\
             {rel}\
             ret;"
        ),
    )
}

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "spinlock_gl_fences_norace",
        description: "global spinlock with membar.gl on acquire and release",
        source: spinlock(
            "membar.gl;\n",
            "membar.gl;\natom.global.exch.b32 %r3, [%rd1], 0;\n",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "spinlock_unfenced_cas_race",
        description:
            "hashtable bug 1: atomicCAS without a fence can be reordered with the critical section",
        source: spinlock("", "membar.gl;\natom.global.exch.b32 %r3, [%rd1], 0;\n"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "spinlock_plain_release_race",
        description: "hashtable bug 2: releasing the lock with a plain unfenced store",
        source: spinlock("membar.gl;\n", "st.global.u32 [%rd1], 0;\n"),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "spinlock_cta_fences_interblock_race",
        description: "a lock built from membar.cta cannot protect cross-block data",
        source: spinlock(
            "membar.cta;\n",
            "membar.cta;\natom.global.exch.b32 %r3, [%rd1], 0;\n",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "spinlock_cta_fences_intrablock_norace",
        description: "block-scope fences suffice for a lock used within one block",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             and.b32 %r4, %r30, 31;\n\
             setp.ne.s32 %p2, %r4, 0;\n\
             @%p2 bra L_end;\n\
             L_acq:\n\
             atom.global.cas.b32 %r1, [%rd1], 0, 1;\n\
             membar.cta;\n\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_acq;\n\
             ld.global.u32 %r2, [%rd1+4];\n\
             add.s32 %r2, %r2, 1;\n\
             st.global.u32 [%rd1+4], %r2;\n\
             membar.cta;\n\
             atom.global.exch.b32 %r3, [%rd1], 0;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_spinlock_norace",
        description: "a spinlock in shared memory protecting shared data",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[8];\n\
             mov.u32 %r30, %tid.x;\n\
             and.b32 %r4, %r30, 31;\n\
             setp.ne.s32 %p2, %r4, 0;\n\
             @%p2 bra L_end;\n\
             mov.u64 %rd1, sm;\n\
             L_acq:\n\
             atom.shared.cas.b32 %r1, [%rd1], 0, 1;\n\
             membar.cta;\n\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_acq;\n\
             ld.shared.u32 %r2, [%rd1+4];\n\
             add.s32 %r2, %r2, 1;\n\
             st.shared.u32 [%rd1+4], %r2;\n\
             membar.cta;\n\
             atom.shared.exch.b32 %r3, [%rd1], 0;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "lock_multiword_critical_section_norace",
        description: "one lock protecting two words",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             L_acq:\n\
             atom.global.cas.b32 %r1, [%rd1], 0, 1;\n\
             membar.gl;\n\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_acq;\n\
             ld.global.u32 %r2, [%rd1+4];\n\
             add.s32 %r2, %r2, 1;\n\
             st.global.u32 [%rd1+4], %r2;\n\
             ld.global.u32 %r3, [%rd1+8];\n\
             add.s32 %r3, %r3, 2;\n\
             st.global.u32 [%rd1+8], %r3;\n\
             membar.gl;\n\
             atom.global.exch.b32 %r5, [%rd1], 0;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "lock_wrong_lock_race",
        description: "each block takes a different lock for the same data",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             mul.wide.s32 %rd2, %r29, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             L_acq:\n\
             atom.global.cas.b32 %r1, [%rd3], 0, 1;\n\
             membar.gl;\n\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_acq;\n\
             ld.global.u32 %r2, [%rd1+8];\n\
             add.s32 %r2, %r2, 1;\n\
             st.global.u32 [%rd1+8], %r2;\n\
             membar.gl;\n\
             atom.global.exch.b32 %r3, [%rd3], 0;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::Race,
    });

    v
}
