//! Shared-memory programs: barrier-staged communication, intra- and
//! inter-warp conflicts, atomics.

use crate::{module_src, ArgSpec, Expectation, SuiteProgram, LIN_TID};
use barracuda_trace::GridDims;

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "shared_ww_interwarp_race",
        description: "lane 0 of each warp writes the same shared word",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[64];\n\
             mov.u32 %r30, %tid.x;\n\
             and.b32 %r1, %r30, 31;\n\
             setp.ne.s32 %p1, %r1, 0;\n\
             @%p1 bra L_end;\n\
             st.shared.u32 [sm], %r30;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "shared_ww_barrier_norace",
        description: "writes to one shared word separated by bar.sync",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[64];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ne.s32 %p1, %r30, 0;\n\
             @%p1 bra L1;\n\
             st.shared.u32 [sm], 1;\n\
             L1:\n\
             bar.sync 0;\n\
             setp.ne.s32 %p2, %r30, 32;\n\
             @%p2 bra L2;\n\
             st.shared.u32 [sm], 2;\n\
             L2:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_staged_read_barrier_norace",
        description: "stage into shared, barrier, read reversed",
        source: module_src(
            ".param .u64 out",
            &format!(
                "        .shared .align 4 .b8 sm[256];\n\
                 {LIN_TID}\
                 ld.param.u64 %rd1, [out];\n\
                 mov.u64 %rd3, sm;\n\
                 mul.wide.s32 %rd2, %r30, 4;\n\
                 add.s64 %rd4, %rd3, %rd2;\n\
                 st.shared.u32 [%rd4], %r30;\n\
                 bar.sync 0;\n\
                 sub.s32 %r1, 63, %r30;\n\
                 mul.wide.s32 %rd5, %r1, 4;\n\
                 add.s64 %rd6, %rd3, %rd5;\n\
                 ld.shared.u32 %r2, [%rd6];\n\
                 add.s64 %rd7, %rd1, %rd2;\n\
                 st.global.u32 [%rd7], %r2;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_rw_nobarrier_race",
        description: "cross-warp neighbour read without a barrier",
        source: module_src(
            ".param .u64 out",
            &format!(
                "        .shared .align 4 .b8 sm[256];\n\
                 {LIN_TID}\
                 ld.param.u64 %rd1, [out];\n\
                 mov.u64 %rd3, sm;\n\
                 mul.wide.s32 %rd2, %r30, 4;\n\
                 add.s64 %rd4, %rd3, %rd2;\n\
                 st.shared.u32 [%rd4], %r30;\n\
                 add.s32 %r1, %r30, 32;\n\
                 and.b32 %r1, %r1, 63;\n\
                 mul.wide.s32 %rd5, %r1, 4;\n\
                 add.s64 %rd6, %rd3, %rd5;\n\
                 ld.shared.u32 %r2, [%rd6];\n\
                 add.s64 %rd7, %rd1, %rd2;\n\
                 st.global.u32 [%rd7], %r2;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "shared_atomic_counter_norace",
        description: "all threads atomically bump a shared counter",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[4];\n\
             atom.shared.add.u32 %r1, [sm], 1;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_atomic_vs_write_race",
        description: "shared atomic in one warp, plain store in another",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[4];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ne.s32 %p1, %r30, 0;\n\
             @%p1 bra L1;\n\
             atom.shared.add.u32 %r1, [sm], 1;\n\
             L1:\n\
             setp.ne.s32 %p2, %r30, 32;\n\
             @%p2 bra L2;\n\
             st.shared.u32 [sm], 9;\n\
             L2:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "shared_disjoint_norace",
        description: "each thread writes its own shared slot",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[256];\n\
             mov.u32 %r30, %tid.x;\n\
             mov.u64 %rd3, sm;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd4, %rd3, %rd2;\n\
             st.shared.u32 [%rd4], %r30;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_intrawarp_diffvalue_race",
        description: "lanes of one warp store different values to one shared word",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[4];\n\
             mov.u32 %r30, %tid.x;\n\
             st.shared.u32 [sm], %r30;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "shared_intrawarp_samevalue_norace",
        description: "lanes of one warp store the same value to one shared word",
        source: module_src(
            "",
            "        .shared .align 4 .b8 sm[4];\n\
             st.shared.u32 [sm], 5;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_pingpong_two_barriers_norace",
        description: "warp 0 → warp 1 → warp 0 hand-off through two barriers",
        source: module_src(
            ".param .u64 out",
            "        .shared .align 4 .b8 sm[8];\n\
             ld.param.u64 %rd1, [out];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ne.s32 %p1, %r30, 0;\n\
             @%p1 bra L1;\n\
             st.shared.u32 [sm], 11;\n\
             L1:\n\
             bar.sync 0;\n\
             setp.ne.s32 %p2, %r30, 32;\n\
             @%p2 bra L2;\n\
             ld.shared.u32 %r1, [sm];\n\
             add.s32 %r1, %r1, 1;\n\
             st.shared.u32 [sm+4], %r1;\n\
             L2:\n\
             bar.sync 0;\n\
             setp.ne.s32 %p3, %r30, 0;\n\
             @%p3 bra L3;\n\
             ld.shared.u32 %r2, [sm+4];\n\
             st.global.u32 [%rd1], %r2;\n\
             L3:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "shared_write_after_read_missing_barrier_race",
        description: "second write overlaps other warps' reads (only one barrier)",
        source: module_src(
            ".param .u64 out",
            &format!(
                "        .shared .align 4 .b8 sm[256];\n\
                 {LIN_TID}\
                 ld.param.u64 %rd1, [out];\n\
                 mov.u64 %rd3, sm;\n\
                 mul.wide.s32 %rd2, %r30, 4;\n\
                 add.s64 %rd4, %rd3, %rd2;\n\
                 st.shared.u32 [%rd4], %r30;\n\
                 bar.sync 0;\n\
                 add.s32 %r1, %r30, 32;\n\
                 and.b32 %r1, %r1, 63;\n\
                 mul.wide.s32 %rd5, %r1, 4;\n\
                 add.s64 %rd6, %rd3, %rd5;\n\
                 ld.shared.u32 %r2, [%rd6];\n\
                 st.shared.u32 [%rd4], %r2;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v
}
