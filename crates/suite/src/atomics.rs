//! Standalone-atomic semantics (paper §3.3.2) and byte-granularity cases.

use crate::{module_src, ArgSpec, Expectation, SuiteProgram};
use barracuda_trace::GridDims;

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "atomic_exch_concurrent_norace",
        description: "concurrent atomic exchanges never race with each other",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             atom.global.exch.b32 %r1, [%rd1], %r29;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "atomic_inc_dec_norace",
        description: "mixed atomic inc and dec on one counter",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_dec;\n\
             atom.global.inc.u32 %r1, [%rd1], 100;\n\
             bra.uni L_end;\n\
             L_dec:\n\
             atom.global.dec.u32 %r1, [%rd1], 100;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "red_vs_read_race",
        description: "a red reduction races with a plain load",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_rd;\n\
             red.global.add.u32 [%rd1], 1;\n\
             bra.uni L_end;\n\
             L_rd:\n\
             ld.global.u32 %r1, [%rd1];\n\
             st.global.u32 [%rd1+4], %r1;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "atomic_min_max_norace",
        description: "atomic min and max on the same word",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_max;\n\
             atom.global.min.u32 %r1, [%rd1], 3;\n\
             bra.uni L_end;\n\
             L_max:\n\
             atom.global.max.u32 %r1, [%rd1], 9;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "atomic_then_own_write_norace",
        description: "a thread's plain write after its own atomic is program-ordered",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             atom.global.add.u32 %r1, [%rd1], 1;\n\
             st.global.u32 [%rd1], 5;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "atomic_independent_locations_norace",
        description: "atomics on shared and global words are independent",
        source: module_src(
            ".param .u64 buf",
            "        .shared .align 4 .b8 sm[4];\n\
             ld.param.u64 %rd1, [buf];\n\
             atom.shared.add.u32 %r1, [sm], 1;\n\
             atom.global.add.u32 %r2, [%rd1], 1;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "byte_overlap_race",
        description: "a u32 store overlaps a u8 store at byte granularity",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_b;\n\
             st.global.u32 [%rd1], 257;\n\
             bra.uni L_end;\n\
             L_b:\n\
             st.global.u8 [%rd1+2], 7;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "byte_adjacent_norace",
        description: "adjacent but non-overlapping stores of different sizes",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_b;\n\
             st.global.u32 [%rd1], 1;\n\
             bra.uni L_end;\n\
             L_b:\n\
             st.global.u8 [%rd1+4], 2;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::NoRace,
    });

    v
}
