//! Branch-ordering races (the paper's new bug class) and warp-synchronous
//! idioms.

use crate::{module_src, ArgSpec, Expectation, SuiteProgram};
use barracuda_trace::GridDims;

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "branch_ordering_race",
        description: "then and else paths of one warp write the same word",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ge.s32 %p1, %r30, 2;\n\
             @%p1 bra L_end;\n\
             setp.eq.s32 %p2, %r30, 0;\n\
             @%p2 bra L_then;\n\
             st.global.u32 [%rd1], 2;\n\
             bra.uni L_end;\n\
             L_then:\n\
             st.global.u32 [%rd1], 1;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "branch_disjoint_paths_norace",
        description: "then and else paths write different words",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ge.s32 %p1, %r30, 2;\n\
             @%p1 bra L_end;\n\
             setp.eq.s32 %p2, %r30, 0;\n\
             @%p2 bra L_then;\n\
             st.global.u32 [%rd1+4], 2;\n\
             bra.uni L_end;\n\
             L_then:\n\
             st.global.u32 [%rd1], 1;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "branch_after_fi_norace",
        description: "reconvergence orders reads after both paths' writes",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ge.s32 %p1, %r30, 2;\n\
             @%p1 bra L_join;\n\
             setp.eq.s32 %p2, %r30, 0;\n\
             @%p2 bra L_then;\n\
             st.global.u32 [%rd1+4], 2;\n\
             bra.uni L_join;\n\
             L_then:\n\
             st.global.u32 [%rd1], 1;\n\
             L_join:\n\
             setp.ne.s32 %p3, %r30, 5;\n\
             @%p3 bra L_end;\n\
             ld.global.u32 %r1, [%rd1];\n\
             ld.global.u32 %r2, [%rd1+4];\n\
             add.s32 %r1, %r1, %r2;\n\
             st.global.u32 [%rd1+8], %r1;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "branch_nested_race",
        description: "inner branches of nested divergence write the same word",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ge.s32 %p1, %r30, 2;\n\
             @%p1 bra L_end;\n\
             setp.eq.s32 %p2, %r30, 0;\n\
             @%p2 bra L_inner_then;\n\
             st.global.u32 [%rd1], 2;\n\
             bra.uni L_inner_end;\n\
             L_inner_then:\n\
             st.global.u32 [%rd1], 1;\n\
             L_inner_end:\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "predicated_write_race",
        description: "a guarded store executed by two lanes to one word (predication transform)",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.lt.s32 %p1, %r30, 2;\n\
             @%p1 st.global.u32 [%rd1], %r30;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "warp_synchronous_shuffle_norace",
        description: "neighbour exchange within one warp relies on lockstep execution",
        source: module_src(
            ".param .u64 out",
            "        .shared .align 4 .b8 sm[128];\n\
             ld.param.u64 %rd1, [out];\n\
             mov.u32 %r30, %tid.x;\n\
             mov.u64 %rd3, sm;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd4, %rd3, %rd2;\n\
             st.shared.u32 [%rd4], %r30;\n\
             add.s32 %r1, %r30, 1;\n\
             and.b32 %r1, %r1, 31;\n\
             mul.wide.s32 %rd5, %r1, 4;\n\
             add.s64 %rd6, %rd3, %rd5;\n\
             ld.shared.u32 %r2, [%rd6];\n\
             add.s64 %rd7, %rd1, %rd2;\n\
             st.global.u32 [%rd7], %r2;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(32 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "interwarp_shuffle_race",
        description: "the same exchange across warps is racy without a barrier",
        source: module_src(
            ".param .u64 out",
            "        .shared .align 4 .b8 sm[256];\n\
             ld.param.u64 %rd1, [out];\n\
             mov.u32 %r30, %tid.x;\n\
             mov.u64 %rd3, sm;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd4, %rd3, %rd2;\n\
             st.shared.u32 [%rd4], %r30;\n\
             add.s32 %r1, %r30, 32;\n\
             and.b32 %r1, %r1, 63;\n\
             mul.wide.s32 %rd5, %r1, 4;\n\
             add.s64 %rd6, %rd3, %rd5;\n\
             ld.shared.u32 %r2, [%rd6];\n\
             add.s64 %rd7, %rd1, %rd2;\n\
             st.global.u32 [%rd7], %r2;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "branch_uniform_norace",
        description: "a branch every lane takes the same way, disjoint writes",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.ge.s32 %p1, %r30, 0;\n\
             @!%p1 bra L_end;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r30;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![ArgSpec::Buf(32 * 4)],
        expected: Expectation::NoRace,
    });

    v
}
