//! Barrier programs: divergence bugs, correct staging, and the limits of
//! block-level barriers.

use crate::{module_src, ArgSpec, Expectation, SuiteProgram, LIN_TID};
use barracuda_trace::GridDims;

/// The shared-memory tree reduction used by two programs; `initial_bar`
/// toggles the staging barrier before the loop.
fn reduction(initial_bar: bool) -> String {
    let bar = if initial_bar { "bar.sync 0;\n" } else { "" };
    module_src(
        ".param .u64 out",
        &format!(
            "        .shared .align 4 .b8 sm[256];\n\
             mov.u32 %r30, %tid.x;\n\
             ld.param.u64 %rd1, [out];\n\
             mov.u64 %rd3, sm;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd4, %rd3, %rd2;\n\
             st.shared.u32 [%rd4], %r30;\n\
             {bar}\
             mov.u32 %r1, 32;\n\
             L_loop:\n\
             setp.ge.u32 %p1, %r30, %r1;\n\
             @%p1 bra L_skip;\n\
             add.s32 %r2, %r30, %r1;\n\
             mul.wide.s32 %rd5, %r2, 4;\n\
             add.s64 %rd6, %rd3, %rd5;\n\
             ld.shared.u32 %r3, [%rd6];\n\
             ld.shared.u32 %r4, [%rd4];\n\
             add.s32 %r4, %r4, %r3;\n\
             st.shared.u32 [%rd4], %r4;\n\
             L_skip:\n\
             bar.sync 0;\n\
             shr.u32 %r1, %r1, 1;\n\
             setp.gt.u32 %p2, %r1, 0;\n\
             @%p2 bra L_loop;\n\
             setp.ne.s32 %p3, %r30, 0;\n\
             @%p3 bra L_end;\n\
             ld.shared.u32 %r5, [%rd4];\n\
             st.global.u32 [%rd1], %r5;\n\
             L_end:\n\
             ret;"
        ),
    )
}

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    v.push(SuiteProgram {
        name: "barrier_divergence_conditional",
        description: "only even threads reach bar.sync",
        source: module_src(
            "",
            "mov.u32 %r30, %tid.x;\n\
             and.b32 %r1, %r30, 1;\n\
             setp.eq.s32 %p1, %r1, 1;\n\
             @%p1 bra L_skip;\n\
             bar.sync 0;\n\
             L_skip:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![],
        expected: Expectation::BarrierDivergence,
    });

    v.push(SuiteProgram {
        name: "barrier_divergence_early_exit",
        description: "one thread returns before the barrier",
        source: module_src(
            "",
            "mov.u32 %r30, %tid.x;\n\
             setp.eq.s32 %p1, %r30, 0;\n\
             @%p1 ret;\n\
             bar.sync 0;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 32u32),
        args: vec![],
        expected: Expectation::BarrierDivergence,
    });

    v.push(SuiteProgram {
        name: "barrier_full_block_norace",
        description: "all threads hit the barrier; disjoint accesses",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 mul.wide.s32 %rd2, %r27, 4;\n\
                 add.s64 %rd3, %rd1, %rd2;\n\
                 st.global.u32 [%rd3], %r27;\n\
                 bar.sync 0;\n\
                 ld.global.u32 %r1, [%rd3];\n\
                 st.global.u32 [%rd3], %r1;\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 64u32),
        args: vec![ArgSpec::Buf(128 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "barrier_not_cross_block_race",
        description: "bar.sync does not order accesses across blocks",
        source: module_src(
            ".param .u64 buf",
            &format!(
                "{LIN_TID}\
                 ld.param.u64 %rd1, [buf];\n\
                 setp.ne.s32 %p1, %r30, 0;\n\
                 @%p1 bra L_bar;\n\
                 setp.ne.s32 %p2, %r29, 0;\n\
                 @%p2 bra L_bar;\n\
                 st.global.u32 [%rd1], 7;\n\
                 L_bar:\n\
                 bar.sync 0;\n\
                 setp.ne.s32 %p3, %r30, 0;\n\
                 @%p3 bra L_end;\n\
                 setp.ne.s32 %p4, %r29, 1;\n\
                 @%p4 bra L_end;\n\
                 ld.global.u32 %r1, [%rd1];\n\
                 st.global.u32 [%rd1+4], %r1;\n\
                 L_end:\n\
                 ret;"
            ),
        ),
        dims: GridDims::new(2u32, 32u32),
        args: vec![ArgSpec::Buf(8)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "reduction_barriers_norace",
        description: "tree reduction in shared memory with a barrier per level",
        source: reduction(true),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "reduction_missing_initial_barrier_race",
        description: "first reduction level reads the other warp's unstaged elements",
        source: reduction(false),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v
}
