//! Flag-chain transitivity, whole-grid synchronization
//! (threadFenceReduction-style), multi-dimensional layouts, partial warps,
//! generic addressing and volatile accesses.

use crate::{module_src, ArgSpec, Expectation, SuiteProgram};
use barracuda_trace::GridDims;

#[allow(clippy::vec_init_then_push)] // one block per program reads best
pub(crate) fn programs() -> Vec<SuiteProgram> {
    let mut v = Vec::new();

    // buf layout: [0]=data, [4]=flag1, [8]=flag2, [12]=out.
    v.push(SuiteProgram {
        name: "chain_release_acquire_norace",
        description: "transitive ordering through a chain of two flags across three blocks",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_middle;\n\
             st.global.u32 [%rd1], 42;\n\
             membar.gl;\n\
             st.global.u32 [%rd1+4], 1;\n\
             ret;\n\
             L_middle:\n\
             setp.eq.s32 %p2, %r29, 1;\n\
             @!%p2 bra L_last;\n\
             L_wait1:\n\
             ld.global.u32 %r1, [%rd1+4];\n\
             membar.gl;\n\
             setp.eq.s32 %p3, %r1, 0;\n\
             @%p3 bra L_wait1;\n\
             membar.gl;\n\
             st.global.u32 [%rd1+8], 1;\n\
             ret;\n\
             L_last:\n\
             L_wait2:\n\
             ld.global.u32 %r2, [%rd1+8];\n\
             membar.gl;\n\
             setp.eq.s32 %p4, %r2, 0;\n\
             @%p4 bra L_wait2;\n\
             ld.global.u32 %r3, [%rd1];\n\
             st.global.u32 [%rd1+12], %r3;\n\
             ret;",
        ),
        dims: GridDims::new(3u32, 1u32),
        args: vec![ArgSpec::Buf(16)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "two_producers_one_flag_race",
        description: "two producers write the same data word before signalling",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 2;\n\
             @%p1 bra L_consumer;\n\
             st.global.u32 [%rd1], %r29;\n\
             membar.gl;\n\
             atom.global.add.u32 %r1, [%rd1+4], 1;\n\
             ret;\n\
             L_consumer:\n\
             L_wait:\n\
             ld.global.u32 %r2, [%rd1+4];\n\
             membar.gl;\n\
             setp.lt.u32 %p2, %r2, 2;\n\
             @%p2 bra L_wait;\n\
             ld.global.u32 %r3, [%rd1];\n\
             st.global.u32 [%rd1+8], %r3;\n\
             ret;",
        ),
        dims: GridDims::new(3u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "flag_wrong_flag_race",
        description: "the consumer synchronizes on a flag the producer never released",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_consumer;\n\
             st.global.u32 [%rd1], 42;\n\
             membar.gl;\n\
             st.global.u32 [%rd1+4], 1;\n\
             st.global.u32 [%rd1+8], 1;\n\
             ret;\n\
             L_consumer:\n\
             L_wait:\n\
             ld.global.u32 %r1, [%rd1+8];\n\
             membar.gl;\n\
             setp.eq.s32 %p2, %r1, 0;\n\
             @%p2 bra L_wait;\n\
             ld.global.u32 %r2, [%rd1];\n\
             st.global.u32 [%rd1+12], %r2;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(16)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "volatile_flag_race",
        description: "volatile accesses do not synchronize",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             setp.eq.s32 %p1, %r29, 0;\n\
             @!%p1 bra L_consumer;\n\
             st.global.u32 [%rd1], 42;\n\
             st.volatile.global.u32 [%rd1+4], 1;\n\
             ret;\n\
             L_consumer:\n\
             L_wait:\n\
             ld.volatile.global.u32 %r1, [%rd1+4];\n\
             setp.eq.s32 %p2, %r1, 0;\n\
             @%p2 bra L_wait;\n\
             ld.global.u32 %r2, [%rd1];\n\
             st.global.u32 [%rd1+8], %r2;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(12)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "grid2d_disjoint_norace",
        description: "2-D grid and block layout with per-thread elements",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r1, %tid.x;\n\
             mov.u32 %r2, %tid.y;\n\
             mov.u32 %r3, %ntid.x;\n\
             mov.u32 %r4, %ntid.y;\n\
             mov.u32 %r5, %ctaid.x;\n\
             mov.u32 %r6, %ctaid.y;\n\
             mov.u32 %r7, %nctaid.x;\n\
             mad.lo.s32 %r8, %r6, %r7, %r5;\n\
             mul.lo.s32 %r9, %r3, %r4;\n\
             mad.lo.s32 %r10, %r2, %r3, %r1;\n\
             mad.lo.s32 %r11, %r8, %r9, %r10;\n\
             mul.wide.s32 %rd2, %r11, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r11;\n\
             ret;",
        ),
        dims: GridDims::new((2, 2, 1), (4, 4, 1)),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "grid3d_disjoint_norace",
        description: "3-D block layout with per-thread elements",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r1, %tid.x;\n\
             mov.u32 %r2, %tid.y;\n\
             mov.u32 %r3, %tid.z;\n\
             mov.u32 %r4, %ntid.x;\n\
             mov.u32 %r5, %ntid.y;\n\
             mov.u32 %r6, %ctaid.z;\n\
             mad.lo.s32 %r7, %r2, %r4, %r1;\n\
             mul.lo.s32 %r8, %r4, %r5;\n\
             mad.lo.s32 %r9, %r3, %r8, %r7;\n\
             mul.lo.s32 %r10, %r8, 2;\n\
             mad.lo.s32 %r11, %r6, %r10, %r9;\n\
             mul.wide.s32 %rd2, %r11, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r11;\n\
             ret;",
        ),
        dims: GridDims::new((1, 1, 2), (2, 2, 2)),
        args: vec![ArgSpec::Buf(16 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "partial_warp_disjoint_norace",
        description: "a block of 40 threads (partial last warp), disjoint writes",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             st.global.u32 [%rd3], %r30;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 40u32),
        args: vec![ArgSpec::Buf(40 * 4)],
        expected: Expectation::NoRace,
    });

    v.push(SuiteProgram {
        name: "partial_warp_conflict_race",
        description: "a full-warp thread and a partial-warp thread write the same word",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r30, %tid.x;\n\
             setp.eq.s32 %p1, %r30, 0;\n\
             @%p1 bra L_w;\n\
             setp.eq.s32 %p2, %r30, 39;\n\
             @%p2 bra L_w;\n\
             bra.uni L_end;\n\
             L_w:\n\
             st.global.u32 [%rd1], %r30;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 40u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "generic_pointer_race",
        description: "conflicting stores through cvta'd generic pointers",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             cvta.to.global.u64 %rd2, %rd1;\n\
             mov.u32 %r29, %ctaid.x;\n\
             st.u32 [%rd2], %r29;\n\
             ret;",
        ),
        dims: GridDims::new(2u32, 1u32),
        args: vec![ArgSpec::Buf(4)],
        expected: Expectation::Race,
    });

    v.push(SuiteProgram {
        name: "generic_shared_norace",
        description: "generic loads/stores resolving to disjoint shared slots",
        source: module_src(
            ".param .u64 out",
            "        .shared .align 4 .b8 sm[256];\n\
             ld.param.u64 %rd1, [out];\n\
             mov.u32 %r30, %tid.x;\n\
             mov.u64 %rd3, sm;\n\
             mul.wide.s32 %rd2, %r30, 4;\n\
             add.s64 %rd4, %rd3, %rd2;\n\
             st.u32 [%rd4], %r30;\n\
             ld.u32 %r1, [%rd4];\n\
             add.s64 %rd5, %rd1, %rd2;\n\
             st.global.u32 [%rd5], %r1;\n\
             ret;",
        ),
        dims: GridDims::new(1u32, 64u32),
        args: vec![ArgSpec::Buf(64 * 4)],
        expected: Expectation::NoRace,
    });

    // buf layout: partials [0..16), ticket [16], out [20].
    v.push(SuiteProgram {
        name: "threadfence_reduction_norace",
        description:
            "last-block pattern: fenced atomic ticket orders partial reads (threadFenceReduction)",
        source: module_src(
            ".param .u64 buf",
            "ld.param.u64 %rd1, [buf];\n\
             mov.u32 %r29, %ctaid.x;\n\
             mul.wide.s32 %rd2, %r29, 4;\n\
             add.s64 %rd3, %rd1, %rd2;\n\
             add.s32 %r1, %r29, 1;\n\
             st.global.u32 [%rd3], %r1;\n\
             membar.gl;\n\
             atom.global.add.u32 %r2, [%rd1+16], 1;\n\
             membar.gl;\n\
             setp.ne.s32 %p1, %r2, 3;\n\
             @%p1 bra L_end;\n\
             ld.global.u32 %r3, [%rd1];\n\
             ld.global.u32 %r4, [%rd1+4];\n\
             add.s32 %r3, %r3, %r4;\n\
             ld.global.u32 %r4, [%rd1+8];\n\
             add.s32 %r3, %r3, %r4;\n\
             ld.global.u32 %r4, [%rd1+12];\n\
             add.s32 %r3, %r3, %r4;\n\
             st.global.u32 [%rd1+20], %r3;\n\
             L_end:\n\
             ret;",
        ),
        dims: GridDims::new(4u32, 1u32),
        args: vec![ArgSpec::Buf(24)],
        expected: Expectation::NoRace,
    });

    v
}
