//! The CUDA concurrency bug suite (paper §6.1).
//!
//! 66 small PTX programs exhibiting subtle data races or race-free
//! behaviour via global memory, shared memory, within and across warps
//! and blocks, using atomics and memory fences to implement locks,
//! whole-grid barriers and flag synchronization — plus barrier-divergence
//! and branch-ordering cases.
//!
//! Each [`SuiteProgram`] carries its expected verdict; [`run_program`]
//! checks it under BARRACUDA and [`evaluate`] compares. The paper reports
//! BARRACUDA correct on all 66 programs while NVIDIA's CUDA-Racecheck is
//! correct on only 19; the `barracuda-racecheck` crate models the
//! comparator.

#![warn(missing_docs)]

mod atomics;
mod barriers;
mod branch;
mod global;
mod locks;
mod misc;
mod multi;
mod shared;

pub use multi::{
    multi_program, multi_programs, run_multi, run_multi_races, run_multi_races_with, MultiArg,
    MultiKernel, MultiProgram, MultiStep,
};

use barracuda::{Barracuda, BarracudaConfig, Error, KernelRun, SimError};
use barracuda_simt::ParamValue;
use barracuda_trace::GridDims;

/// Every suite kernel uses this entry name.
pub const KERNEL: &str = "k";

/// Expected verdict of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// At least one data race must be reported.
    Race,
    /// No race and no diagnostic.
    NoRace,
    /// A barrier-divergence bug must be reported.
    BarrierDivergence,
}

/// Kernel argument specification; buffers are zero-initialized device
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSpec {
    /// A device buffer of this many bytes.
    Buf(u64),
    /// A scalar.
    U32(u32),
}

/// One suite program.
#[derive(Debug, Clone)]
pub struct SuiteProgram {
    /// Unique program name.
    pub name: &'static str,
    /// What the program exhibits.
    pub description: &'static str,
    /// Full PTX module source with entry [`KERNEL`].
    pub source: String,
    /// Launch dimensions.
    pub dims: GridDims,
    /// Kernel arguments to allocate.
    pub args: Vec<ArgSpec>,
    /// Ground-truth verdict.
    pub expected: Expectation,
}

/// Observed verdict of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Verdict {
    Race,
    NoRace,
    BarrierDivergence,
    /// Simulator fault other than barrier divergence (always a bug in the
    /// suite or simulator).
    Error(String),
}

/// The standard module header for suite kernels.
pub(crate) fn module_src(params: &str, body: &str) -> String {
    let plist = if params.is_empty() {
        String::new()
    } else {
        params.to_string()
    };
    format!(
        ".version 4.3\n.target sm_35\n.address_size 64\n\
         .visible .entry k({plist})\n{{\n\
         .reg .pred %p<8>;\n.reg .b32 %r<32>;\n.reg .b64 %rd<32>;\n\
         {body}\n}}"
    )
}

/// Common snippet: linear thread id in `%r27` (tid.x in `%r30`, ctaid.x in
/// `%r29`, ntid.x in `%r28`).
pub(crate) const LIN_TID: &str = "mov.u32 %r30, %tid.x;\n\
     mov.u32 %r29, %ctaid.x;\n\
     mov.u32 %r28, %ntid.x;\n\
     mad.lo.s32 %r27, %r29, %r28, %r30;\n";

/// All 66 programs.
pub fn all_programs() -> Vec<SuiteProgram> {
    let mut v = Vec::with_capacity(66);
    v.extend(global::programs());
    v.extend(shared::programs());
    v.extend(branch::programs());
    v.extend(barriers::programs());
    v.extend(locks::programs());
    v.extend(atomics::programs());
    v.extend(misc::programs());
    v
}

/// Looks up a program by name.
pub fn program(name: &str) -> Option<SuiteProgram> {
    all_programs().into_iter().find(|p| p.name == name)
}

/// Runs one program under BARRACUDA with the default configuration and
/// returns the observed verdict.
pub fn run_program(p: &SuiteProgram) -> Verdict {
    run_program_with(p, BarracudaConfig::default())
}

/// Runs one program under BARRACUDA with an explicit configuration
/// (detection mode, queue sizing, fault plan, …) and returns the observed
/// verdict. Degradation diagnostics ([`barracuda::Diagnostic::WorkerPanic`],
/// [`barracuda::Diagnostic::LostRecords`]) do not affect the verdict; only
/// barrier divergence does.
pub fn run_program_with(p: &SuiteProgram, config: BarracudaConfig) -> Verdict {
    let mut bar = Barracuda::with_config(config);
    let mut params = Vec::with_capacity(p.args.len());
    for a in &p.args {
        match a {
            ArgSpec::Buf(bytes) => params.push(ParamValue::Ptr(bar.gpu_mut().malloc(*bytes))),
            ArgSpec::U32(v) => params.push(ParamValue::U32(*v)),
        }
    }
    let run = KernelRun {
        source: &p.source,
        kernel: KERNEL,
        dims: p.dims,
        params: &params,
    };
    match bar.check(&run) {
        Ok(analysis) => {
            let diverged = analysis
                .diagnostics()
                .iter()
                .any(|d| matches!(d, barracuda::Diagnostic::BarrierDivergence { .. }));
            if diverged {
                Verdict::BarrierDivergence
            } else if analysis.race_count() > 0 {
                Verdict::Race
            } else {
                Verdict::NoRace
            }
        }
        Err(Error::Sim(SimError::BarrierDivergence { .. })) => Verdict::BarrierDivergence,
        Err(e) => Verdict::Error(e.to_string()),
    }
}

/// True when the program's observed verdict matches its expectation.
pub fn evaluate(p: &SuiteProgram) -> bool {
    matches!(
        (run_program(p), p.expected),
        (Verdict::Race, Expectation::Race)
            | (Verdict::NoRace, Expectation::NoRace)
            | (Verdict::BarrierDivergence, Expectation::BarrierDivergence)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_66_programs_with_unique_names() {
        let ps = all_programs();
        assert_eq!(ps.len(), 66, "paper's suite has 66 programs");
        let names: HashSet<&str> = ps.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 66);
    }

    #[test]
    fn all_programs_parse() {
        for p in all_programs() {
            barracuda_ptx::parse(&p.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.name));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(program("global_ww_interblock_race").is_some());
        assert!(program("nonexistent").is_none());
    }
}
