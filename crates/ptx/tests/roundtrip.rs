//! Property: printing any well-formed kernel yields PTX that reparses to a
//! structurally identical kernel (print ∘ parse = id). This is the
//! property the instrumentation pipeline relies on — rewritten modules
//! are reloaded through the text path, mirroring the paper's regeneration
//! of the fat binary.

use barracuda_ptx::ast::*;
use barracuda_ptx::printer::print_module;
use barracuda_ptx::KernelBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a random but well-formed kernel from a seed.
fn random_kernel(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KernelBuilder::new("k");
    b.param("buf", Type::U64);
    b.param("n", Type::U32);
    if rng.random::<bool>() {
        b.shared("sm", 64 + rng.random_range(0..4) * 16, 4);
    }
    let pred = b.reg("%p0", RegClass::Pred);
    let r32: Vec<Reg> = (0..6)
        .map(|i| b.reg(format!("%r{i}"), RegClass::B32))
        .collect();
    let r64: Vec<Reg> = (0..4)
        .map(|i| b.reg(format!("%rd{i}"), RegClass::B64))
        .collect();
    let f32r = b.reg("%f0", RegClass::F32);

    let n_ops = rng.random_range(5..40);
    let mut open_labels: Vec<String> = Vec::new();
    for i in 0..n_ops {
        let pick = rng.random_range(0..12);
        let rd = r32[rng.random_range(0..r32.len())];
        let ra = Operand::Reg(r32[rng.random_range(0..r32.len())]);
        let rb = if rng.random::<bool>() {
            Operand::Imm(rng.random_range(-100..100))
        } else {
            Operand::Reg(r32[rng.random_range(0..r32.len())])
        };
        let addr_reg = r64[rng.random_range(0..r64.len())];
        match pick {
            0 => {
                b.push(Op::Bin {
                    op: BinOp::Add,
                    ty: Type::S32,
                    dst: rd,
                    a: ra,
                    b: rb,
                });
            }
            1 => {
                b.push(Op::Mul {
                    mode: MulMode::Wide,
                    ty: Type::U32,
                    dst: r64[0],
                    a: ra,
                    b: rb,
                });
            }
            2 => {
                b.push(Op::Ld {
                    space: Space::Global,
                    cache: if rng.random::<bool>() {
                        Some(CacheOp::Cg)
                    } else {
                        None
                    },
                    volatile: rng.random::<bool>(),
                    ty: Type::U32,
                    dst: rd,
                    addr: Address::reg_off(addr_reg, rng.random_range(-8..64)),
                });
            }
            3 => {
                b.push(Op::St {
                    space: Space::Global,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    addr: Address::reg(addr_reg),
                    src: ra,
                });
            }
            4 => {
                b.push(Op::Atom {
                    space: Space::Global,
                    op: AtomOp::Cas,
                    ty: Type::B32,
                    dst: rd,
                    addr: Address::reg(addr_reg),
                    a: Operand::Imm(0),
                    b: Some(Operand::Imm(1)),
                });
            }
            5 => {
                b.push(Op::Membar {
                    level: [FenceLevel::Cta, FenceLevel::Gl, FenceLevel::Sys]
                        [rng.random_range(0..3)],
                });
            }
            6 => {
                b.push(Op::Setp {
                    cmp: CmpOp::Lt,
                    ty: Type::S32,
                    dst: pred,
                    a: ra,
                    b: rb,
                });
            }
            7 => {
                // Open a forward branch region (closed below).
                let label = b.fresh_label("fwd");
                b.push_guarded(
                    pred,
                    rng.random::<bool>(),
                    Op::Bra {
                        uni: false,
                        target: label.clone(),
                    },
                );
                open_labels.push(label);
            }
            8 => {
                b.push(Op::Selp {
                    ty: Type::B32,
                    dst: rd,
                    a: ra,
                    b: rb,
                    p: pred,
                });
            }
            9 => {
                b.push(Op::Cvt {
                    dty: Type::U64,
                    sty: Type::U32,
                    dst: r64[1],
                    a: ra,
                });
            }
            10 => {
                b.push(Op::Mov {
                    ty: Type::F32,
                    dst: f32r,
                    src: Operand::FImm(f64::from(rng.random::<f32>())),
                });
            }
            _ => {
                b.push(Op::Mov {
                    ty: Type::U32,
                    dst: rd,
                    src: Operand::Special(SpecialReg::Tid(Dim::X)),
                });
            }
        }
        // Occasionally close an open branch region.
        if !open_labels.is_empty() && (rng.random::<bool>() || i == n_ops - 1) {
            b.label(open_labels.pop().expect("non-empty"));
        }
    }
    for l in open_labels {
        b.label(l);
    }
    b.push(Op::Ret);
    b.build_module()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(seed in any::<u64>()) {
        let m1 = random_kernel(seed);
        let t1 = print_module(&m1);
        let m2 = barracuda_ptx::parse(&t1)
            .unwrap_or_else(|e| panic!("seed {seed}: printed module failed to reparse: {e}\n{t1}"));
        prop_assert_eq!(&m1.kernels[0].stmts, &m2.kernels[0].stmts, "seed {}", seed);
        prop_assert_eq!(&m1.kernels[0].params, &m2.kernels[0].params);
        prop_assert_eq!(&m1.kernels[0].shared, &m2.kernels[0].shared);
        // Idempotence: printing again is a fixpoint.
        let t2 = print_module(&m2);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn cfg_construction_is_total(seed in any::<u64>()) {
        // Every generated kernel has a well-defined CFG with consistent
        // block_of mapping and in-range successors.
        let m = random_kernel(seed);
        let flat = barracuda_ptx::cfg::FlatKernel::from_kernel(&m.kernels[0]);
        let cfg = barracuda_ptx::cfg::Cfg::build(&flat);
        prop_assert_eq!(cfg.block_of.len(), flat.instrs.len());
        for (b, block) in cfg.blocks.iter().enumerate() {
            prop_assert!(block.start < block.end);
            for s in block.succs() {
                prop_assert!(s < cfg.blocks.len());
            }
            for i in block.start..block.end {
                prop_assert_eq!(cfg.block_of[i], b);
            }
        }
    }
}
