//! Recursive-descent parser from token stream to [`Module`].

use crate::ast::*;
use crate::error::PtxError;
use crate::lexer::{lex, Tok, Token};
use std::collections::HashSet;

/// Parses a complete PTX module.
///
/// # Errors
///
/// Returns [`PtxError`] on syntax errors, references to undeclared
/// registers/labels, duplicate labels, or guards on non-predicate registers.
pub fn parse_module(source: &str) -> Result<Module, PtxError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.module()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> PtxError {
        PtxError::new(self.line(), msg)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), PtxError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, PtxError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, PtxError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------------- module

    fn module(&mut self) -> Result<Module, PtxError> {
        let mut m = Module::new();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Dot => {
                    self.bump();
                    let dir = self.expect_ident("directive name")?;
                    match dir.as_str() {
                        "version" => m.version = self.version()?,
                        "target" => m.target = self.expect_ident(".target value")?,
                        "address_size" => {
                            m.address_size = self.expect_int(".address_size value")? as u32
                        }
                        "visible" | "extern" | "weak" => { /* linkage: skip */ }
                        "entry" => {
                            let k = self.kernel()?;
                            m.kernels.push(k);
                        }
                        other => {
                            return Err(self.err(format!("unsupported module directive .{other}")))
                        }
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected directive at module scope, found {other:?}"
                    )))
                }
            }
        }
        validate(&m)?;
        Ok(m)
    }

    fn version(&mut self) -> Result<(u32, u32), PtxError> {
        match self.bump() {
            Some(Tok::Float(v)) => {
                let major = v.trunc() as u32;
                let minor = ((v - v.trunc()) * 10.0).round() as u32;
                Ok((major, minor))
            }
            Some(Tok::Int(v)) => Ok((v as u32, 0)),
            other => Err(self.err(format!("expected version number, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------------- kernel

    fn kernel(&mut self) -> Result<Kernel, PtxError> {
        let name = self.expect_ident("kernel name")?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) {
            while !self.eat(&Tok::RParen) {
                self.expect(&Tok::Dot, ".param")?;
                let kw = self.expect_ident("param")?;
                if kw != "param" {
                    return Err(self.err(format!("expected .param, found .{kw}")));
                }
                self.expect(&Tok::Dot, "param type")?;
                let tyname = self.expect_ident("param type")?;
                let ty = parse_type(&tyname)
                    .ok_or_else(|| self.err(format!("bad param type .{tyname}")))?;
                // Optional `.ptr .space .align N` annotations.
                while self.peek() == Some(&Tok::Dot) {
                    self.bump();
                    let ann = self.expect_ident("param annotation")?;
                    if ann == "align" {
                        self.expect_int("alignment")?;
                    }
                    // `.ptr`, `.global`, etc. carry no operands.
                }
                let pname = self.expect_ident("param name")?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    self.expect(&Tok::RParen, "')' after params")?;
                    break;
                }
            }
        }
        self.expect(&Tok::LBrace, "'{' starting kernel body")?;
        let mut regs = RegFile::new();
        let mut shared: Vec<SharedDecl> = Vec::new();
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in kernel body")),
                Some(Tok::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Tok::Dot) => {
                    self.bump();
                    let dir = self.expect_ident("body directive")?;
                    match dir.as_str() {
                        "reg" => self.reg_decl(&mut regs)?,
                        "shared" => self.shared_decl(&mut shared)?,
                        "local" => self.skip_through_semi(),
                        other => {
                            return Err(self.err(format!("unsupported body directive .{other}")))
                        }
                    }
                }
                Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::Colon) => {
                    let label = self.expect_ident("label")?;
                    self.bump(); // colon
                    stmts.push(Statement::Label(label));
                }
                _ => {
                    let instr = self.instruction(&regs)?;
                    stmts.push(Statement::Instr(instr));
                }
            }
        }
        Ok(Kernel {
            name,
            params,
            regs,
            shared,
            stmts,
        })
    }

    fn skip_through_semi(&mut self) {
        while let Some(t) = self.bump() {
            if t == Tok::Semi {
                break;
            }
        }
    }

    /// `.reg .b32 %r<16>;` or `.reg .pred %p, %q;`
    fn reg_decl(&mut self, regs: &mut RegFile) -> Result<(), PtxError> {
        self.expect(&Tok::Dot, "register class")?;
        let cname = self.expect_ident("register class")?;
        let class = match cname.as_str() {
            "pred" => RegClass::Pred,
            "b8" | "b16" | "b32" | "u8" | "u16" | "u32" | "s8" | "s16" | "s32" => RegClass::B32,
            "b64" | "u64" | "s64" => RegClass::B64,
            "f32" => RegClass::F32,
            "f64" => RegClass::F64,
            other => return Err(self.err(format!("bad register class .{other}"))),
        };
        loop {
            let base = match self.bump() {
                Some(Tok::Reg(name)) => name,
                other => return Err(self.err(format!("expected register name, found {other:?}"))),
            };
            if self.eat(&Tok::LAngle) {
                let count = self.expect_int("register count")?;
                self.expect(&Tok::RAngle, "'>'")?;
                for i in 0..count {
                    regs.declare(format!("{base}{i}"), class);
                }
            } else {
                regs.declare(base, class);
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi, "';' after .reg")?;
        Ok(())
    }

    /// `.shared .align 4 .b8 name[SIZE];` or `.shared .u32 name;` /
    /// `.shared .f32 name[N];`
    fn shared_decl(&mut self, shared: &mut Vec<SharedDecl>) -> Result<(), PtxError> {
        let mut align = 4u32;
        self.expect(&Tok::Dot, "shared decl type")?;
        let mut word = self.expect_ident("shared decl type")?;
        if word == "align" {
            align = self.expect_int("alignment")? as u32;
            self.expect(&Tok::Dot, "shared decl type")?;
            word = self.expect_ident("shared decl type")?;
        }
        let ty = parse_type(&word).ok_or_else(|| self.err(format!("bad shared type .{word}")))?;
        let name = self.expect_ident("shared variable name")?;
        let size = if self.eat(&Tok::LBracket) {
            let n = self.expect_int("array length")? as u64;
            self.expect(&Tok::RBracket, "']'")?;
            n * ty.size()
        } else {
            ty.size()
        };
        self.expect(&Tok::Semi, "';' after .shared")?;
        let prev_end = shared.iter().map(|s| s.offset + s.size).max().unwrap_or(0);
        let align64 = u64::from(align.max(1));
        let offset = prev_end.div_ceil(align64) * align64;
        shared.push(SharedDecl {
            name,
            align,
            size,
            offset,
        });
        Ok(())
    }

    // ----------------------------------------------------------- instruction

    fn instruction(&mut self, regs: &RegFile) -> Result<Instruction, PtxError> {
        let guard = if self.eat(&Tok::At) {
            let negated = self.eat(&Tok::Bang);
            let pred = self.reg_operand(regs)?;
            if regs.info(pred).class != RegClass::Pred {
                return Err(self.err("guard register is not a predicate"));
            }
            Some(Guard { pred, negated })
        } else {
            None
        };
        let head = self.expect_ident("instruction mnemonic")?;
        let mut suffixes = Vec::new();
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            suffixes.push(self.expect_ident("mnemonic suffix")?);
        }
        let op = self.opcode(&head, &suffixes, regs)?;
        self.expect(&Tok::Semi, "';' after instruction")?;
        Ok(Instruction { guard, op })
    }

    fn opcode(&mut self, head: &str, suffixes: &[String], regs: &RegFile) -> Result<Op, PtxError> {
        match head {
            "ld" | "st" => self.ld_st(head == "ld", suffixes, regs),
            "atom" => self.atom(suffixes, regs, false),
            "red" => self.atom(suffixes, regs, true),
            "membar" => {
                let level = match suffixes.first().map(String::as_str) {
                    Some("cta") => FenceLevel::Cta,
                    Some("gl") => FenceLevel::Gl,
                    Some("sys") => FenceLevel::Sys,
                    other => return Err(self.err(format!("bad membar level {other:?}"))),
                };
                Ok(Op::Membar { level })
            }
            "bar" => {
                if suffixes.first().map(String::as_str) != Some("sync") {
                    return Err(self.err("only bar.sync is supported"));
                }
                let idx = self.expect_int("barrier index")? as u32;
                Ok(Op::Bar { idx })
            }
            "bra" => {
                let uni = suffixes.iter().any(|s| s == "uni");
                let target = self.expect_ident("branch target")?;
                Ok(Op::Bra { uni, target })
            }
            "setp" => {
                let cmp = suffixes
                    .first()
                    .and_then(|s| parse_cmp(s))
                    .ok_or_else(|| self.err("bad setp comparison"))?;
                let ty = self.type_from_suffixes(&suffixes[1..])?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                Ok(Op::Setp { cmp, ty, dst, a, b })
            }
            "mov" => {
                let ty = self.type_from_suffixes(suffixes)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let src = self.operand(regs)?;
                Ok(Op::Mov { ty, dst, src })
            }
            "add" | "sub" | "div" | "rem" | "min" | "max" | "and" | "or" | "xor" | "shl"
            | "shr" => {
                let op = match head {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "div" => BinOp::Div,
                    "rem" => BinOp::Rem,
                    "min" => BinOp::Min,
                    "max" => BinOp::Max,
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    "xor" => BinOp::Xor,
                    "shl" => BinOp::Shl,
                    _ => BinOp::Shr,
                };
                let ty = self.type_from_suffixes(suffixes)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                Ok(Op::Bin { op, ty, dst, a, b })
            }
            "not" | "neg" | "abs" => {
                let op = match head {
                    "not" => UnOp::Not,
                    "neg" => UnOp::Neg,
                    _ => UnOp::Abs,
                };
                let ty = self.type_from_suffixes(suffixes)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                Ok(Op::Un { op, ty, dst, a })
            }
            "mul" => {
                let (mode, rest) = take_mul_mode(suffixes);
                let ty = self.type_from_suffixes(rest)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                Ok(Op::Mul {
                    mode,
                    ty,
                    dst,
                    a,
                    b,
                })
            }
            "mad" | "fma" => {
                let (mode, rest) = take_mul_mode(suffixes);
                let ty = self.type_from_suffixes(rest)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let c = self.operand(regs)?;
                Ok(Op::Mad {
                    mode,
                    ty,
                    dst,
                    a,
                    b,
                    c,
                })
            }
            "selp" => {
                let ty = self.type_from_suffixes(suffixes)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let p = self.reg_operand(regs)?;
                Ok(Op::Selp { ty, dst, a, b, p })
            }
            "cvt" => {
                let tys: Vec<Type> = suffixes.iter().filter_map(|s| parse_type(s)).collect();
                if tys.len() != 2 {
                    return Err(self.err("cvt requires destination and source types"));
                }
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                Ok(Op::Cvt {
                    dty: tys[0],
                    sty: tys[1],
                    dst,
                    a,
                })
            }
            "cvta" => {
                let to = suffixes.first().map(String::as_str) == Some("to");
                let space = suffixes
                    .iter()
                    .find_map(|s| parse_space(s))
                    .unwrap_or(Space::Generic);
                let ty = self.type_from_suffixes(suffixes)?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                Ok(Op::Cvta {
                    to,
                    space,
                    ty,
                    dst,
                    a,
                })
            }
            "shfl" => {
                let mode = match suffixes.first().map(String::as_str) {
                    Some("up") => ShflMode::Up,
                    Some("down") => ShflMode::Down,
                    Some("bfly") => ShflMode::Bfly,
                    Some("idx") => ShflMode::Idx,
                    other => return Err(self.err(format!("bad shfl mode {other:?}"))),
                };
                let ty = self.type_from_suffixes(&suffixes[1..])?;
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let c = self.operand(regs)?;
                Ok(Op::Shfl {
                    mode,
                    ty,
                    dst,
                    a,
                    b,
                    c,
                })
            }
            "call" => {
                let target = self.expect_ident("call target")?;
                let mut args = Vec::new();
                if self.eat(&Tok::Comma) {
                    self.expect(&Tok::LParen, "'(' before call args")?;
                    while !self.eat(&Tok::RParen) {
                        args.push(self.operand(regs)?);
                        if !self.eat(&Tok::Comma) {
                            self.expect(&Tok::RParen, "')' after call args")?;
                            break;
                        }
                    }
                }
                Ok(Op::Call { target, args })
            }
            "ret" => Ok(Op::Ret),
            "exit" => Ok(Op::Exit),
            other => Err(self.err(format!("unsupported instruction '{other}'"))),
        }
    }

    fn ld_st(&mut self, is_ld: bool, suffixes: &[String], regs: &RegFile) -> Result<Op, PtxError> {
        let mut space = Space::Generic;
        let mut cache = None;
        let mut volatile = false;
        let mut ty = None;
        let mut vec: Option<usize> = None;
        for s in suffixes {
            if s == "volatile" {
                volatile = true;
            } else if s == "v2" {
                vec = Some(2);
            } else if s == "v4" {
                vec = Some(4);
            } else if let Some(sp) = parse_space(s) {
                space = sp;
            } else if let Some(c) = parse_cache(s) {
                cache = Some(c);
            } else if let Some(t) = parse_type(s) {
                ty = Some(t);
            } else {
                return Err(self.err(format!("bad ld/st suffix .{s}")));
            }
        }
        let ty = ty.ok_or_else(|| self.err("ld/st missing type suffix"))?;
        match (is_ld, vec) {
            (true, None) => {
                let dst = self.reg_operand(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let addr = self.address(regs)?;
                Ok(Op::Ld {
                    space,
                    cache,
                    volatile,
                    ty,
                    dst,
                    addr,
                })
            }
            (false, None) => {
                let addr = self.address(regs)?;
                self.expect(&Tok::Comma, "','")?;
                let src = self.operand(regs)?;
                Ok(Op::St {
                    space,
                    cache,
                    volatile,
                    ty,
                    addr,
                    src,
                })
            }
            (true, Some(n)) => {
                self.expect(&Tok::LBrace, "'{' before vector destinations")?;
                let mut dsts = Vec::with_capacity(n);
                for i in 0..n {
                    if i > 0 {
                        self.expect(&Tok::Comma, "','")?;
                    }
                    dsts.push(self.reg_operand(regs)?);
                }
                self.expect(&Tok::RBrace, "'}' after vector destinations")?;
                self.expect(&Tok::Comma, "','")?;
                let addr = self.address(regs)?;
                Ok(Op::LdVec {
                    space,
                    cache,
                    volatile,
                    ty,
                    dsts,
                    addr,
                })
            }
            (false, Some(n)) => {
                let addr = self.address(regs)?;
                self.expect(&Tok::Comma, "','")?;
                self.expect(&Tok::LBrace, "'{' before vector sources")?;
                let mut srcs = Vec::with_capacity(n);
                for i in 0..n {
                    if i > 0 {
                        self.expect(&Tok::Comma, "','")?;
                    }
                    srcs.push(self.operand(regs)?);
                }
                self.expect(&Tok::RBrace, "'}' after vector sources")?;
                Ok(Op::StVec {
                    space,
                    cache,
                    volatile,
                    ty,
                    addr,
                    srcs,
                })
            }
        }
    }

    fn atom(&mut self, suffixes: &[String], regs: &RegFile, is_red: bool) -> Result<Op, PtxError> {
        let mut space = Space::Generic;
        let mut op = None;
        let mut ty = None;
        for s in suffixes {
            if let Some(sp) = parse_space(s) {
                space = sp;
            } else if let Some(a) = parse_atom_op(s) {
                op = Some(a);
            } else if let Some(t) = parse_type(s) {
                ty = Some(t);
            } else {
                return Err(self.err(format!("bad atom suffix .{s}")));
            }
        }
        let op = op.ok_or_else(|| self.err("atom missing operation suffix"))?;
        let ty = ty.ok_or_else(|| self.err("atom missing type suffix"))?;
        if is_red {
            let addr = self.address(regs)?;
            self.expect(&Tok::Comma, "','")?;
            let a = self.operand(regs)?;
            return Ok(Op::Red {
                space,
                op,
                ty,
                addr,
                a,
            });
        }
        let dst = self.reg_operand(regs)?;
        self.expect(&Tok::Comma, "','")?;
        let addr = self.address(regs)?;
        self.expect(&Tok::Comma, "','")?;
        let a = self.operand(regs)?;
        let b = if op == AtomOp::Cas {
            self.expect(&Tok::Comma, "',' before cas swap value")?;
            Some(self.operand(regs)?)
        } else {
            None
        };
        Ok(Op::Atom {
            space,
            op,
            ty,
            dst,
            addr,
            a,
            b,
        })
    }

    // -------------------------------------------------------------- operands

    fn type_from_suffixes(&self, suffixes: &[String]) -> Result<Type, PtxError> {
        suffixes
            .iter()
            .rev()
            .find_map(|s| parse_type(s))
            .ok_or_else(|| self.err("missing type suffix"))
    }

    fn reg_operand(&mut self, regs: &RegFile) -> Result<Reg, PtxError> {
        match self.bump() {
            Some(Tok::Reg(name)) => regs
                .find(&name)
                .ok_or_else(|| self.err(format!("undeclared register {name}"))),
            other => Err(self.err(format!("expected register, found {other:?}"))),
        }
    }

    fn operand(&mut self, regs: &RegFile) -> Result<Operand, PtxError> {
        match self.bump() {
            Some(Tok::Reg(name)) => {
                // Special registers with a dimension suffix.
                if let Some(base) = special_base(&name) {
                    if self.eat(&Tok::Dot) {
                        let dim = match self.expect_ident("dimension")?.as_str() {
                            "x" => Dim::X,
                            "y" => Dim::Y,
                            "z" => Dim::Z,
                            d => return Err(self.err(format!("bad dimension .{d}"))),
                        };
                        return Ok(Operand::Special(base(dim)));
                    }
                    return Err(self.err(format!("{name} requires a .x/.y/.z suffix")));
                }
                if name == "%laneid" {
                    return Ok(Operand::Special(SpecialReg::LaneId));
                }
                let r = regs
                    .find(&name)
                    .ok_or_else(|| self.err(format!("undeclared register {name}")))?;
                Ok(Operand::Reg(r))
            }
            Some(Tok::Int(v)) => Ok(Operand::Imm(v)),
            Some(Tok::Float(v)) => Ok(Operand::FImm(v)),
            Some(Tok::Ident(s)) if s == "WARP_SZ" => Ok(Operand::Special(SpecialReg::WarpSize)),
            Some(Tok::Ident(s)) => Ok(Operand::Sym(s)),
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    fn address(&mut self, regs: &RegFile) -> Result<Address, PtxError> {
        self.expect(&Tok::LBracket, "'['")?;
        let base = match self.bump() {
            Some(Tok::Reg(name)) => {
                let r = regs
                    .find(&name)
                    .ok_or_else(|| self.err(format!("undeclared register {name}")))?;
                AddrBase::Reg(r)
            }
            Some(Tok::Ident(sym)) => AddrBase::Sym(sym),
            other => Err(self.err(format!("expected address base, found {other:?}")))?,
        };
        let mut offset = 0;
        if self.eat(&Tok::Plus) {
            offset = self.expect_int("address offset")?;
        } else if let Some(Tok::Int(v)) = self.peek() {
            // `[%r1+-4]` lexes the negative offset as a single Int.
            if *v < 0 {
                offset = *v;
                self.bump();
            }
        }
        self.expect(&Tok::RBracket, "']'")?;
        Ok(Address { base, offset })
    }
}

fn take_mul_mode(suffixes: &[String]) -> (MulMode, &[String]) {
    match suffixes.first().map(String::as_str) {
        Some("lo") => (MulMode::Lo, &suffixes[1..]),
        Some("hi") => (MulMode::Hi, &suffixes[1..]),
        Some("wide") => (MulMode::Wide, &suffixes[1..]),
        _ => (MulMode::Lo, suffixes),
    }
}

fn special_base(name: &str) -> Option<fn(Dim) -> SpecialReg> {
    match name {
        "%tid" => Some(SpecialReg::Tid),
        "%ntid" => Some(SpecialReg::Ntid),
        "%ctaid" => Some(SpecialReg::Ctaid),
        "%nctaid" => Some(SpecialReg::Nctaid),
        _ => None,
    }
}

fn parse_type(s: &str) -> Option<Type> {
    Some(match s {
        "pred" => Type::Pred,
        "b8" => Type::B8,
        "b16" => Type::B16,
        "b32" => Type::B32,
        "b64" => Type::B64,
        "u8" => Type::U8,
        "u16" => Type::U16,
        "u32" => Type::U32,
        "u64" => Type::U64,
        "s8" => Type::S8,
        "s16" => Type::S16,
        "s32" => Type::S32,
        "s64" => Type::S64,
        "f32" => Type::F32,
        "f64" => Type::F64,
        _ => return None,
    })
}

fn parse_space(s: &str) -> Option<Space> {
    Some(match s {
        "global" => Space::Global,
        "shared" => Space::Shared,
        "local" => Space::Local,
        "param" => Space::Param,
        _ => return None,
    })
}

fn parse_cache(s: &str) -> Option<CacheOp> {
    Some(match s {
        "ca" => CacheOp::Ca,
        "cg" => CacheOp::Cg,
        "cs" => CacheOp::Cs,
        "wt" => CacheOp::Wt,
        "wb" => CacheOp::Wb,
        _ => return None,
    })
}

fn parse_atom_op(s: &str) -> Option<AtomOp> {
    Some(match s {
        "add" => AtomOp::Add,
        "exch" => AtomOp::Exch,
        "cas" => AtomOp::Cas,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "and" => AtomOp::And,
        "or" => AtomOp::Or,
        "xor" => AtomOp::Xor,
        "inc" => AtomOp::Inc,
        "dec" => AtomOp::Dec,
        _ => return None,
    })
}

fn parse_cmp(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        "lo" => CmpOp::Lo,
        "ls" => CmpOp::Ls,
        "hi" => CmpOp::Hi,
        "hs" => CmpOp::Hs,
        _ => return None,
    })
}

/// Post-parse semantic validation: labels unique, branch targets resolve,
/// `ld.param` symbols exist, shared-space symbols exist.
fn validate(m: &Module) -> Result<(), PtxError> {
    for k in &m.kernels {
        let mut labels = HashSet::new();
        for s in &k.stmts {
            if let Statement::Label(l) = s {
                if !labels.insert(l.clone()) {
                    return Err(PtxError::new(
                        0,
                        format!("duplicate label {l} in kernel {}", k.name),
                    ));
                }
            }
        }
        for instr in k.instructions() {
            match &instr.op {
                Op::Bra { target, .. } if !labels.contains(target) => {
                    return Err(PtxError::new(
                        0,
                        format!("branch to undefined label {target} in kernel {}", k.name),
                    ));
                }
                Op::Ld {
                    space: Space::Param,
                    addr,
                    ..
                } => {
                    if let AddrBase::Sym(sym) = &addr.base {
                        if k.param_info(sym).is_none() {
                            return Err(PtxError::new(
                                0,
                                format!("unknown parameter {sym} in kernel {}", k.name),
                            ));
                        }
                    }
                }
                Op::Ld {
                    space: Space::Shared,
                    addr,
                    ..
                }
                | Op::St {
                    space: Space::Shared,
                    addr,
                    ..
                } => {
                    if let AddrBase::Sym(sym) = &addr.base {
                        if k.shared_offset(sym).is_none() {
                            return Err(PtxError::new(
                                0,
                                format!("unknown shared variable {sym} in kernel {}", k.name),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

    fn parse_kernel_body(body: &str) -> Result<Module, PtxError> {
        parse_module(&format!(
            "{HEADER}.visible .entry k(.param .u64 p0, .param .u32 p1)\n{{\n{body}\n}}"
        ))
    }

    #[test]
    fn module_header() {
        let m = parse_module(HEADER).unwrap();
        assert_eq!(m.version, (4, 3));
        assert_eq!(m.target, "sm_35");
        assert_eq!(m.address_size, 64);
        assert!(m.kernels.is_empty());
    }

    #[test]
    fn kernel_with_params() {
        let m = parse_kernel_body(".reg .b32 %r<4>;\nret;").unwrap();
        let k = &m.kernels[0];
        assert_eq!(k.name, "k");
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.params[0].ty, Type::U64);
        assert_eq!(k.params[1].ty, Type::U32);
        assert_eq!(k.static_instruction_count(), 1);
    }

    #[test]
    fn reg_ranges_and_lists() {
        let m = parse_kernel_body(".reg .b32 %r<3>;\n.reg .pred %p, %q;\nret;").unwrap();
        let k = &m.kernels[0];
        assert!(k.regs.find("%r0").is_some());
        assert!(k.regs.find("%r2").is_some());
        assert!(k.regs.find("%r3").is_none());
        assert_eq!(
            k.regs.info(k.regs.find("%p").unwrap()).class,
            RegClass::Pred
        );
        assert_eq!(
            k.regs.info(k.regs.find("%q").unwrap()).class,
            RegClass::Pred
        );
    }

    #[test]
    fn shared_decl_layout_and_alignment() {
        let m = parse_kernel_body(
            ".shared .align 4 .b8 a[10];\n.shared .align 8 .u64 b;\n.shared .f32 c[4];\nret;",
        )
        .unwrap();
        let k = &m.kernels[0];
        assert_eq!(k.shared_offset("a"), Some(0));
        assert_eq!(k.shared_offset("b"), Some(16)); // 10 rounded up to 8-align
        assert_eq!(k.shared_offset("c"), Some(24));
        assert_eq!(k.shared_size(), 40);
    }

    #[test]
    fn loads_and_stores() {
        let m = parse_kernel_body(
            ".reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
             ld.param.u64 %rd1, [p0];\n\
             ld.global.cg.u32 %r1, [%rd1+8];\n\
             st.global.u32 [%rd1], %r1;\n\
             ld.volatile.shared.u32 %r2, [%rd1];\n\
             .shared .b8 sm[64];\n\
             st.shared.u32 [sm+4], %r2;\nret;",
        )
        .unwrap();
        let k = &m.kernels[0];
        let ops: Vec<&Op> = k.instructions().map(|i| &i.op).collect();
        match ops[1] {
            Op::Ld {
                space,
                cache,
                ty,
                addr,
                ..
            } => {
                assert_eq!(*space, Space::Global);
                assert_eq!(*cache, Some(CacheOp::Cg));
                assert_eq!(*ty, Type::U32);
                assert_eq!(addr.offset, 8);
            }
            other => panic!("expected ld, got {other:?}"),
        }
        match ops[3] {
            Op::Ld {
                volatile, space, ..
            } => {
                assert!(volatile);
                assert_eq!(*space, Space::Shared);
            }
            other => panic!("expected volatile ld, got {other:?}"),
        }
        match ops[4] {
            Op::St { addr, .. } => {
                assert_eq!(addr.base, AddrBase::Sym("sm".into()));
                assert_eq!(addr.offset, 4);
            }
            other => panic!("expected st, got {other:?}"),
        }
    }

    #[test]
    fn atomics() {
        let m = parse_kernel_body(
            ".reg .b32 %r<4>;\n.reg .b64 %rd<2>;\n\
             atom.global.add.u32 %r1, [%rd1], 1;\n\
             atom.global.cas.b32 %r2, [%rd1], 0, 1;\n\
             atom.shared.exch.b32 %r3, [%rd1], 0;\n\
             red.global.add.u32 [%rd1], %r1;\nret;",
        )
        .unwrap();
        let ops: Vec<&Op> = m.kernels[0].instructions().map(|i| &i.op).collect();
        match ops[0] {
            Op::Atom { op, b, .. } => {
                assert_eq!(*op, AtomOp::Add);
                assert!(b.is_none());
            }
            other => panic!("{other:?}"),
        }
        match ops[1] {
            Op::Atom { op, b, .. } => {
                assert_eq!(*op, AtomOp::Cas);
                assert_eq!(*b, Some(Operand::Imm(1)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            ops[3],
            Op::Red {
                op: AtomOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn fences_barriers_branches() {
        let m = parse_kernel_body(
            ".reg .pred %p<2>;\n.reg .b32 %r<2>;\n\
             membar.cta;\nmembar.gl;\nmembar.sys;\nbar.sync 0;\n\
             setp.eq.s32 %p1, %r1, 0;\n\
             @%p1 bra L1;\n\
             @!%p1 bra L1;\n\
             bra.uni L1;\nL1:\nret;",
        )
        .unwrap();
        let k = &m.kernels[0];
        let instrs: Vec<&Instruction> = k.instructions().collect();
        assert!(matches!(
            instrs[0].op,
            Op::Membar {
                level: FenceLevel::Cta
            }
        ));
        assert!(matches!(
            instrs[1].op,
            Op::Membar {
                level: FenceLevel::Gl
            }
        ));
        assert!(matches!(instrs[3].op, Op::Bar { idx: 0 }));
        assert!(instrs[5].guard.is_some());
        assert!(!instrs[5].guard.unwrap().negated);
        assert!(instrs[6].guard.unwrap().negated);
        assert!(matches!(&instrs[7].op, Op::Bra { uni: true, .. }));
    }

    #[test]
    fn specials_and_alu() {
        let m = parse_kernel_body(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
             mov.u32 %r1, %tid.x;\n\
             mov.u32 %r2, %ctaid.y;\n\
             mov.u32 %r3, %ntid.x;\n\
             mov.u32 %r4, %laneid;\n\
             mov.u32 %r5, WARP_SZ;\n\
             mad.lo.s32 %r6, %r2, %r3, %r1;\n\
             mul.wide.s32 %rd1, %r6, 4;\n\
             cvt.u64.u32 %rd2, %r6;\n\
             selp.b32 %r7, 1, 0, %p;\n.reg .pred %p;\nret;",
        );
        // %p used before declared — our parser requires declaration first.
        assert!(m.is_err());
        let m = parse_kernel_body(
            ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n.reg .pred %p;\n\
             mov.u32 %r1, %tid.x;\n\
             mad.lo.s32 %r6, %r1, %r1, %r1;\n\
             mul.wide.s32 %rd1, %r6, 4;\n\
             selp.b32 %r7, 1, 0, %p;\nret;",
        )
        .unwrap();
        let ops: Vec<&Op> = m.kernels[0].instructions().map(|i| &i.op).collect();
        assert!(matches!(
            ops[0],
            Op::Mov {
                src: Operand::Special(SpecialReg::Tid(Dim::X)),
                ..
            }
        ));
        assert!(matches!(
            ops[2],
            Op::Mul {
                mode: MulMode::Wide,
                ..
            }
        ));
    }

    #[test]
    fn call_with_args() {
        let m = parse_kernel_body(
            ".reg .b64 %rd<2>;\ncall.uni __barracuda_log_ld, (%rd1, 4);\ncall.uni __noargs;\nret;",
        )
        .unwrap();
        let ops: Vec<&Op> = m.kernels[0].instructions().map(|i| &i.op).collect();
        match ops[0] {
            Op::Call { target, args } => {
                assert_eq!(target, "__barracuda_log_ld");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(ops[1], Op::Call { args, .. } if args.is_empty()));
    }

    #[test]
    fn undeclared_register_rejected() {
        assert!(parse_kernel_body("mov.u32 %r1, 0;\nret;").is_err());
    }

    #[test]
    fn undefined_branch_target_rejected() {
        assert!(parse_kernel_body("bra.uni NOPE;\nret;").is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(parse_kernel_body("L:\nL:\nret;").is_err());
    }

    #[test]
    fn unknown_param_rejected() {
        assert!(parse_kernel_body(".reg .b64 %rd<2>;\nld.param.u64 %rd1, [nope];\nret;").is_err());
    }

    #[test]
    fn guard_on_non_predicate_rejected() {
        assert!(parse_kernel_body(".reg .b32 %r<2>;\n@%r1 bra L;\nL:\nret;").is_err());
    }

    #[test]
    fn mov_shared_symbol_address() {
        let m =
            parse_kernel_body(".shared .b8 sm[64];\n.reg .b64 %rd<2>;\nmov.u64 %rd1, sm;\nret;")
                .unwrap();
        let ops: Vec<&Op> = m.kernels[0].instructions().map(|i| &i.op).collect();
        assert!(matches!(ops[0], Op::Mov { src: Operand::Sym(s), .. } if s == "sm"));
    }

    #[test]
    fn negative_offset_address() {
        let m = parse_kernel_body(
            ".reg .b32 %r<2>;\n.reg .b64 %rd<2>;\nld.global.u32 %r1, [%rd1+-4];\nret;",
        )
        .unwrap();
        let instr = m.kernels[0].instructions().next().unwrap().clone();
        match &instr.op {
            Op::Ld { addr, .. } => assert_eq!(addr.offset, -4),
            other => panic!("{other:?}"),
        }
    }
}
