use std::fmt;

/// Error produced while lexing, parsing or validating PTX source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtxError {
    line: u32,
    message: String,
}

impl PtxError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        PtxError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line the error was detected on (0 if unknown).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "ptx parse error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "ptx error: {}", self.message)
        }
    }
}

impl std::error::Error for PtxError {}
