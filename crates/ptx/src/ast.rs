//! Typed abstract syntax tree for the supported PTX subset.
//!
//! The subset covers everything the BARRACUDA paper relies on: loads and
//! stores to the global/shared/local/param state spaces, the full family of
//! `atom.*` read-modify-write operations, `membar.{cta,gl,sys}` memory
//! fences, `bar.sync` block barriers, conditional and unconditional
//! branches with predication, comparison/select/convert and the common ALU
//! instruction forms, plus `call.uni` (used by the instrumentation framework
//! for logging call-sites).

use std::fmt;

/// Scalar PTX type (the `.u32` in `ld.global.u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum Type {
    /// Predicate (1-bit boolean) register type.
    Pred,
    B8,
    B16,
    B32,
    B64,
    U8,
    U16,
    U32,
    U64,
    S8,
    S16,
    S32,
    S64,
    F32,
    F64,
}

impl Type {
    /// Size of a value of this type in bytes (predicates count as 1).
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            Type::Pred | Type::B8 | Type::U8 | Type::S8 => 1,
            Type::B16 | Type::U16 | Type::S16 => 2,
            Type::B32 | Type::U32 | Type::S32 | Type::F32 => 4,
            Type::B64 | Type::U64 | Type::S64 | Type::F64 => 8,
        }
    }

    /// True for the signed-integer types.
    #[inline]
    pub fn is_signed(self) -> bool {
        matches!(self, Type::S8 | Type::S16 | Type::S32 | Type::S64)
    }

    /// True for `f32`/`f64`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// The register class a value of this type lives in.
    #[inline]
    pub fn reg_class(self) -> RegClass {
        match self {
            Type::Pred => RegClass::Pred,
            Type::B8 | Type::U8 | Type::S8 | Type::B16 | Type::U16 | Type::S16 => RegClass::B32,
            Type::B32 | Type::U32 | Type::S32 => RegClass::B32,
            Type::B64 | Type::U64 | Type::S64 => RegClass::B64,
            Type::F32 => RegClass::F32,
            Type::F64 => RegClass::F64,
        }
    }

    /// PTX spelling, e.g. `u32`.
    pub fn name(self) -> &'static str {
        match self {
            Type::Pred => "pred",
            Type::B8 => "b8",
            Type::B16 => "b16",
            Type::B32 => "b32",
            Type::B64 => "b64",
            Type::U8 => "u8",
            Type::U16 => "u16",
            Type::U32 => "u32",
            Type::U64 => "u64",
            Type::S8 => "s8",
            Type::S16 => "s16",
            Type::S32 => "s32",
            Type::S64 => "s64",
            Type::F32 => "f32",
            Type::F64 => "f64",
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Register storage class: determines which physical register file a
/// virtual register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum RegClass {
    Pred,
    B32,
    B64,
    F32,
    F64,
}

/// PTX state space (the `.global` in `ld.global.u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device-wide memory, visible to every thread in the grid.
    Global,
    /// Per-thread-block scratchpad memory.
    Shared,
    /// Per-thread private memory.
    Local,
    /// Kernel parameter space (read-only).
    Param,
    /// Generic address space (`ld.u32` with no space qualifier); resolved
    /// dynamically from the address value.
    Generic,
}

impl Space {
    /// PTX spelling, or `""` for the generic space.
    pub fn name(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Param => "param",
            Space::Generic => "",
        }
    }
}

/// Cache operator on loads/stores (`.cg`, `.ca`, ...). BARRACUDA's litmus
/// tests use `.cg` (skip the incoherent L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum CacheOp {
    /// Cache at all levels (`.ca`, default for loads).
    Ca,
    /// Cache at global level, skipping L1 (`.cg`).
    Cg,
    /// Cache streaming (`.cs`).
    Cs,
    /// Volatile-like write-through (`.wt`).
    Wt,
    /// Write-back (`.wb`, default for stores).
    Wb,
}

impl CacheOp {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            CacheOp::Ca => "ca",
            CacheOp::Cg => "cg",
            CacheOp::Cs => "cs",
            CacheOp::Wt => "wt",
            CacheOp::Wb => "wb",
        }
    }
}

/// Memory fence level for `membar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FenceLevel {
    /// `membar.cta`: orders memory within the thread block.
    Cta,
    /// `membar.gl`: orders memory across the whole device.
    Gl,
    /// `membar.sys`: orders memory across the system (treated as global for
    /// intra-kernel analysis, per paper footnote 1).
    Sys,
}

impl FenceLevel {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            FenceLevel::Cta => "cta",
            FenceLevel::Gl => "gl",
            FenceLevel::Sys => "sys",
        }
    }
}

/// Atomic read-modify-write operation kind for `atom.*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum AtomOp {
    Add,
    /// Fetch-and-set; commonly used to *free* a lock (paper §3.1).
    Exch,
    /// Compare-and-swap; commonly used to *obtain* a lock (paper §3.1).
    Cas,
    Min,
    Max,
    And,
    Or,
    Xor,
    Inc,
    Dec,
}

impl AtomOp {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::And => "and",
            AtomOp::Or => "or",
            AtomOp::Xor => "xor",
            AtomOp::Inc => "inc",
            AtomOp::Dec => "dec",
        }
    }
}

/// Comparison operator for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unsigned lower.
    Lo,
    /// Unsigned lower-or-same.
    Ls,
    /// Unsigned higher.
    Hi,
    /// Unsigned higher-or-same.
    Hs,
}

impl CmpOp {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Lo => "lo",
            CmpOp::Ls => "ls",
            CmpOp::Hi => "hi",
            CmpOp::Hs => "hs",
        }
    }
}

/// Two-operand ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum BinOp {
    Add,
    Sub,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

/// One-operand ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum UnOp {
    Not,
    Neg,
    Abs,
}

impl UnOp {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::Abs => "abs",
        }
    }
}

/// Multiplication width mode (`mul.lo`, `mul.hi`, `mul.wide`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum MulMode {
    Lo,
    Hi,
    Wide,
}

impl MulMode {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            MulMode::Lo => "lo",
            MulMode::Hi => "hi",
            MulMode::Wide => "wide",
        }
    }
}

/// Warp shuffle mode (`shfl.up/down/bfly/idx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShflMode {
    /// Source lane = lane − b.
    Up,
    /// Source lane = lane + b.
    Down,
    /// Source lane = lane ⊕ b.
    Bfly,
    /// Source lane = b.
    Idx,
}

impl ShflMode {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            ShflMode::Up => "up",
            ShflMode::Down => "down",
            ShflMode::Bfly => "bfly",
            ShflMode::Idx => "idx",
        }
    }
}

/// Special (read-only) hardware register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum SpecialReg {
    Tid(Dim),
    Ntid(Dim),
    Ctaid(Dim),
    Nctaid(Dim),
    LaneId,
    WarpSize,
}

/// Dimension selector for 3-D special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum Dim {
    X,
    Y,
    Z,
}

impl Dim {
    /// Lower-case axis letter.
    pub fn name(self) -> &'static str {
        match self {
            Dim::X => "x",
            Dim::Y => "y",
            Dim::Z => "z",
        }
    }
}

impl SpecialReg {
    /// PTX spelling including the leading `%`.
    pub fn name(self) -> String {
        match self {
            SpecialReg::Tid(d) => format!("%tid.{}", d.name()),
            SpecialReg::Ntid(d) => format!("%ntid.{}", d.name()),
            SpecialReg::Ctaid(d) => format!("%ctaid.{}", d.name()),
            SpecialReg::Nctaid(d) => format!("%nctaid.{}", d.name()),
            SpecialReg::LaneId => "%laneid".to_string(),
            SpecialReg::WarpSize => "WARP_SZ".to_string(),
        }
    }
}

/// A virtual register, identified by its index into the kernel's
/// [`RegFile`]. The index encodes nothing about the class; look the register
/// up in the file for its name and type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Index into the owning kernel's register file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one declared virtual register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegInfo {
    /// Register name including the `%` sigil, e.g. `%r3`.
    pub name: String,
    /// Declared register class type (`.pred`, `.b32`, `.b64`, `.f32`, `.f64`).
    pub class: RegClass,
}

/// The set of virtual registers declared by a kernel.
///
/// Registers are interned: instructions reference them by [`Reg`] index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFile {
    regs: Vec<RegInfo>,
}

impl RegFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of declared registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True if no registers are declared.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Declares a register with an explicit name, returning its handle.
    pub fn declare(&mut self, name: impl Into<String>, class: RegClass) -> Reg {
        let idx = self.regs.len() as u32;
        self.regs.push(RegInfo {
            name: name.into(),
            class,
        });
        Reg(idx)
    }

    /// Allocates a fresh register with a generated, collision-free name.
    ///
    /// Used by the instrumenter when rewriting predicated instructions.
    pub fn alloc(&mut self, class: RegClass) -> Reg {
        let prefix = match class {
            RegClass::Pred => "%__bp",
            RegClass::B32 => "%__br",
            RegClass::B64 => "%__brd",
            RegClass::F32 => "%__bf",
            RegClass::F64 => "%__bfd",
        };
        let name = format!("{prefix}{}", self.regs.len());
        self.declare(name, class)
    }

    /// Looks up a register's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `reg` was not produced by this file.
    pub fn info(&self, reg: Reg) -> &RegInfo {
        &self.regs[reg.index()]
    }

    /// Finds a register by name.
    pub fn find(&self, name: &str) -> Option<Reg> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| Reg(i as u32))
    }

    /// Iterates over `(handle, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, &RegInfo)> {
        self.regs
            .iter()
            .enumerate()
            .map(|(i, r)| (Reg(i as u32), r))
    }
}

/// An instruction operand: register, immediate, special register or the
/// address of a named symbol.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Operand {
    Reg(Reg),
    /// Integer immediate, stored as raw bits (sign-extended for negatives).
    Imm(i64),
    /// Floating-point immediate.
    FImm(f64),
    Special(SpecialReg),
    /// Address of a named `.shared` variable (`mov.u64 %rd, smem;` yields
    /// the variable's offset within the block's shared segment).
    Sym(String),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// A memory address expression: `[base + offset]` where base is a register
/// or a named symbol (kernel parameter or shared-memory variable).
#[derive(Debug, Clone, PartialEq)]
pub struct Address {
    /// Base register or symbol.
    pub base: AddrBase,
    /// Constant byte offset added to the base.
    pub offset: i64,
}

/// Base of an [`Address`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum AddrBase {
    Reg(Reg),
    /// Named symbol: a `.param` name or a `.shared` variable name.
    Sym(String),
}

impl Address {
    /// Address based at a register with zero offset.
    pub fn reg(r: Reg) -> Self {
        Address {
            base: AddrBase::Reg(r),
            offset: 0,
        }
    }

    /// Address based at a register with a byte offset.
    pub fn reg_off(r: Reg, offset: i64) -> Self {
        Address {
            base: AddrBase::Reg(r),
            offset,
        }
    }

    /// Address based at a named symbol.
    pub fn sym(name: impl Into<String>) -> Self {
        Address {
            base: AddrBase::Sym(name.into()),
            offset: 0,
        }
    }

    /// Address based at a named symbol plus byte offset.
    pub fn sym_off(name: impl Into<String>, offset: i64) -> Self {
        Address {
            base: AddrBase::Sym(name.into()),
            offset,
        }
    }

    /// The base register, if the base is a register.
    pub fn base_reg(&self) -> Option<Reg> {
        match self.base {
            AddrBase::Reg(r) => Some(r),
            AddrBase::Sym(_) => None,
        }
    }
}

/// Guard predicate on an instruction (`@%p` / `@!%p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: Reg,
    /// `@!%p` form: execute when the predicate is false.
    pub negated: bool,
}

/// Instruction opcode with operands.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum Op {
    /// `ld.space.type dst, [addr]`
    Ld {
        space: Space,
        cache: Option<CacheOp>,
        volatile: bool,
        ty: Type,
        dst: Reg,
        addr: Address,
    },
    /// `st.space.type [addr], src`
    St {
        space: Space,
        cache: Option<CacheOp>,
        volatile: bool,
        ty: Type,
        addr: Address,
        src: Operand,
    },
    /// `ld.space.v2/v4.type {dsts...}, [addr]` — vectorized load of 2 or
    /// 4 consecutive elements.
    LdVec {
        space: Space,
        cache: Option<CacheOp>,
        volatile: bool,
        ty: Type,
        dsts: Vec<Reg>,
        addr: Address,
    },
    /// `st.space.v2/v4.type [addr], {srcs...}`
    StVec {
        space: Space,
        cache: Option<CacheOp>,
        volatile: bool,
        ty: Type,
        addr: Address,
        srcs: Vec<Operand>,
    },
    /// `atom.space.op.type dst, [addr], a (, b)` — `b` only for `cas`.
    Atom {
        space: Space,
        op: AtomOp,
        ty: Type,
        dst: Reg,
        addr: Address,
        a: Operand,
        b: Option<Operand>,
    },
    /// `red.space.op.type [addr], a` — reduction (atomic without result).
    Red {
        space: Space,
        op: AtomOp,
        ty: Type,
        addr: Address,
        a: Operand,
    },
    /// `membar.level`
    Membar { level: FenceLevel },
    /// `bar.sync idx`
    Bar { idx: u32 },
    /// `bra target` / `bra.uni target`. A guarded `bra` is a conditional
    /// branch.
    Bra { uni: bool, target: String },
    /// `setp.cmp.type dst, a, b`
    Setp {
        cmp: CmpOp,
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `mov.type dst, src`
    Mov { ty: Type, dst: Reg, src: Operand },
    /// Binary ALU: `op.type dst, a, b`
    Bin {
        op: BinOp,
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// Unary ALU: `op.type dst, a`
    Un {
        op: UnOp,
        ty: Type,
        dst: Reg,
        a: Operand,
    },
    /// `mul.mode.type dst, a, b`
    Mul {
        mode: MulMode,
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `mad.mode.type dst, a, b, c` — `dst = a*b + c`
    Mad {
        mode: MulMode,
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `selp.type dst, a, b, p` — `dst = p ? a : b`
    Selp {
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
        p: Reg,
    },
    /// `cvt.dty.sty dst, a`
    Cvt {
        dty: Type,
        sty: Type,
        dst: Reg,
        a: Operand,
    },
    /// `cvta.to.space.type dst, a` (to=true) or `cvta.space.type dst, a`.
    /// Address-space conversion; a no-op in this flat-address simulator but
    /// parsed and preserved for compatibility with compiler output.
    Cvta {
        to: bool,
        space: Space,
        ty: Type,
        dst: Reg,
        a: Operand,
    },
    /// `call.uni target, (args...);` — used for instrumentation hooks.
    Call { target: String, args: Vec<Operand> },
    /// `shfl.mode.b32 dst, a, b, c` — intra-warp register exchange: every
    /// active lane receives `a` as evaluated on its source lane (its own
    /// value when the source lane is inactive or out of range). A pure
    /// register operation: no memory access, no logging.
    Shfl {
        mode: ShflMode,
        ty: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `ret;`
    Ret,
    /// `exit;`
    Exit,
}

impl Op {
    /// The register written by this instruction, if any (the first, for
    /// vector loads — use [`Op::defs`] when all matter).
    pub fn def(&self) -> Option<Reg> {
        match self {
            Op::Ld { dst, .. }
            | Op::Atom { dst, .. }
            | Op::Setp { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Mul { dst, .. }
            | Op::Mad { dst, .. }
            | Op::Selp { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::Cvta { dst, .. }
            | Op::Shfl { dst, .. } => Some(*dst),
            Op::LdVec { dsts, .. } => dsts.first().copied(),
            _ => None,
        }
    }

    /// All registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Op::LdVec { dsts, .. } => dsts.clone(),
            other => other.def().into_iter().collect(),
        }
    }

    /// True for instructions that access memory (loads, stores, atomics).
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Op::Ld { .. }
                | Op::St { .. }
                | Op::LdVec { .. }
                | Op::StVec { .. }
                | Op::Atom { .. }
                | Op::Red { .. }
        )
    }

    /// True for control-transfer instructions ending a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Bra { .. } | Op::Ret | Op::Exit)
    }
}

/// A (possibly guarded) instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Optional `@%p` guard.
    pub guard: Option<Guard>,
    /// The operation.
    pub op: Op,
}

impl Instruction {
    /// Unguarded instruction.
    pub fn new(op: Op) -> Self {
        Instruction { guard: None, op }
    }

    /// Instruction guarded by `@pred` (or `@!pred` if `negated`).
    pub fn guarded(pred: Reg, negated: bool, op: Op) -> Self {
        Instruction {
            guard: Some(Guard { pred, negated }),
            op,
        }
    }
}

/// One statement in a kernel body: a label or an instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum Statement {
    Label(String),
    Instr(Instruction),
}

/// A kernel (`.entry`) parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter symbol name.
    pub name: String,
    /// Declared `.param` type.
    pub ty: Type,
}

/// A `.shared` memory declaration: `.shared .align A .b8 name[SIZE];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedDecl {
    /// Variable name.
    pub name: String,
    /// Declared alignment in bytes.
    pub align: u32,
    /// Size in bytes.
    pub size: u64,
    /// Byte offset of this variable within the block's shared segment
    /// (assigned at parse/build time).
    pub offset: u64,
}

/// A compiled kernel: parameters, register file, shared-memory layout and a
/// flat statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Entry name.
    pub name: String,
    /// Declared `.param` list, in order.
    pub params: Vec<Param>,
    /// Declared virtual registers.
    pub regs: RegFile,
    /// `.shared` variables with assigned offsets.
    pub shared: Vec<SharedDecl>,
    /// Body: labels and instructions in order.
    pub stmts: Vec<Statement>,
}

impl Kernel {
    /// Total shared-memory bytes declared by the kernel.
    pub fn shared_size(&self) -> u64 {
        self.shared
            .iter()
            .map(|s| s.offset + s.size)
            .max()
            .unwrap_or(0)
    }

    /// Byte offset of a `.shared` symbol within the block's shared segment.
    pub fn shared_offset(&self, name: &str) -> Option<u64> {
        self.shared
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.offset)
    }

    /// Byte offset of a parameter within the (packed, 8-byte-aligned)
    /// parameter block, plus its type.
    pub fn param_info(&self, name: &str) -> Option<(u64, Type)> {
        let mut off = 0u64;
        for p in &self.params {
            if p.name == name {
                return Some((off, p.ty));
            }
            off += 8; // every param occupies one 8-byte slot
        }
        None
    }

    /// Number of instruction statements (static PTX instructions).
    pub fn static_instruction_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Statement::Instr(_)))
            .count()
    }

    /// Iterates over the instructions, skipping labels.
    pub fn instructions(&self) -> impl Iterator<Item = &Instruction> {
        self.stmts.iter().filter_map(|s| match s {
            Statement::Instr(i) => Some(i),
            Statement::Label(_) => None,
        })
    }
}

/// A PTX module: header directives plus kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// `.version` major/minor.
    pub version: (u32, u32),
    /// `.target`, e.g. `sm_35`.
    pub target: String,
    /// `.address_size` (32 or 64).
    pub address_size: u32,
    /// Entry kernels in declaration order.
    pub kernels: Vec<Kernel>,
}

impl Module {
    /// An empty module with the defaults used throughout this repo
    /// (`.version 4.3`, `.target sm_35`, `.address_size 64`).
    pub fn new() -> Self {
        Module {
            version: (4, 3),
            target: "sm_35".to_string(),
            address_size: 64,
            kernels: Vec::new(),
        }
    }

    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Total static instruction count across all kernels.
    pub fn static_instruction_count(&self) -> usize {
        self.kernels
            .iter()
            .map(Kernel::static_instruction_count)
            .sum()
    }
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::U8.size(), 1);
        assert_eq!(Type::B16.size(), 2);
        assert_eq!(Type::F32.size(), 4);
        assert_eq!(Type::S64.size(), 8);
        assert_eq!(Type::Pred.size(), 1);
    }

    #[test]
    fn type_classes() {
        assert_eq!(Type::U32.reg_class(), RegClass::B32);
        assert_eq!(Type::S64.reg_class(), RegClass::B64);
        assert_eq!(Type::F64.reg_class(), RegClass::F64);
        assert_eq!(Type::Pred.reg_class(), RegClass::Pred);
        assert!(Type::S32.is_signed());
        assert!(!Type::U32.is_signed());
        assert!(Type::F32.is_float());
    }

    #[test]
    fn regfile_declare_find_alloc() {
        let mut rf = RegFile::new();
        let r1 = rf.declare("%r1", RegClass::B32);
        let p = rf.declare("%p1", RegClass::Pred);
        assert_eq!(rf.find("%r1"), Some(r1));
        assert_eq!(rf.find("%p1"), Some(p));
        assert_eq!(rf.find("%nope"), None);
        let t = rf.alloc(RegClass::B64);
        assert_ne!(rf.info(t).name, rf.info(r1).name);
        assert_eq!(rf.info(t).class, RegClass::B64);
        assert_eq!(rf.len(), 3);
    }

    #[test]
    fn op_def_and_kind_queries() {
        let mut rf = RegFile::new();
        let r = rf.declare("%r1", RegClass::B32);
        let ld = Op::Ld {
            space: Space::Global,
            cache: None,
            volatile: false,
            ty: Type::U32,
            dst: r,
            addr: Address::reg(r),
        };
        assert_eq!(ld.def(), Some(r));
        assert!(ld.is_memory_access());
        assert!(!ld.is_terminator());
        assert!(Op::Ret.is_terminator());
        assert!(Op::Bra {
            uni: true,
            target: "L".into()
        }
        .is_terminator());
        assert_eq!(Op::Ret.def(), None);
    }

    #[test]
    fn kernel_param_offsets() {
        let k = Kernel {
            name: "k".into(),
            params: vec![
                Param {
                    name: "a".into(),
                    ty: Type::U64,
                },
                Param {
                    name: "b".into(),
                    ty: Type::U32,
                },
            ],
            regs: RegFile::new(),
            shared: vec![],
            stmts: vec![],
        };
        assert_eq!(k.param_info("a"), Some((0, Type::U64)));
        assert_eq!(k.param_info("b"), Some((8, Type::U32)));
        assert_eq!(k.param_info("c"), None);
    }

    #[test]
    fn kernel_shared_layout() {
        let k = Kernel {
            name: "k".into(),
            params: vec![],
            regs: RegFile::new(),
            shared: vec![
                SharedDecl {
                    name: "a".into(),
                    align: 4,
                    size: 64,
                    offset: 0,
                },
                SharedDecl {
                    name: "b".into(),
                    align: 8,
                    size: 32,
                    offset: 64,
                },
            ],
            stmts: vec![],
        };
        assert_eq!(k.shared_size(), 96);
        assert_eq!(k.shared_offset("b"), Some(64));
        assert_eq!(k.shared_offset("z"), None);
    }
}
