//! Hand-rolled lexer for PTX source text.
//!
//! Produces a flat token stream with line numbers for error reporting.
//! Comments (`//` and `/* */`) are stripped.

use crate::error::PtxError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Tok {
    /// Identifier or dotted directive head (without the leading dot), e.g.
    /// `ld`, `kernel_name`. Dots *inside* instruction mnemonics are split
    /// into [`Tok::Dot`]-separated identifiers.
    Ident(String),
    /// A directive: identifier preceded by `.`, e.g. `.version` → `version`.
    /// Only produced at the *start* of a directive; mnemonic suffixes use
    /// `Dot` + `Ident`.
    Dot,
    /// Register token including sigil, e.g. `%r1`, `%tid` (suffix `.x`
    /// arrives as `Dot` + `Ident`).
    Reg(String),
    /// Integer literal (decimal or hex), value as written.
    Int(i64),
    /// Float literal (`1.5`, `0f3F800000`, `0d...`).
    Float(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LAngle,
    RAngle,
    Comma,
    Semi,
    Colon,
    Plus,
    At,
    Bang,
}

/// Token tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexes PTX source into tokens.
///
/// # Errors
///
/// Returns [`PtxError`] on unterminated block comments, malformed numeric
/// literals or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, PtxError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(PtxError::new(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'{' => push(&mut toks, Tok::LBrace, line, &mut i),
            b'}' => push(&mut toks, Tok::RBrace, line, &mut i),
            b'(' => push(&mut toks, Tok::LParen, line, &mut i),
            b')' => push(&mut toks, Tok::RParen, line, &mut i),
            b'[' => push(&mut toks, Tok::LBracket, line, &mut i),
            b']' => push(&mut toks, Tok::RBracket, line, &mut i),
            b'<' => push(&mut toks, Tok::LAngle, line, &mut i),
            b'>' => push(&mut toks, Tok::RAngle, line, &mut i),
            b',' => push(&mut toks, Tok::Comma, line, &mut i),
            b';' => push(&mut toks, Tok::Semi, line, &mut i),
            b':' => push(&mut toks, Tok::Colon, line, &mut i),
            b'+' => push(&mut toks, Tok::Plus, line, &mut i),
            b'@' => push(&mut toks, Tok::At, line, &mut i),
            b'!' => push(&mut toks, Tok::Bang, line, &mut i),
            b'.' => push(&mut toks, Tok::Dot, line, &mut i),
            b'%' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                if i == start + 1 {
                    return Err(PtxError::new(line, "bare '%' without register name"));
                }
                toks.push(Token {
                    tok: Tok::Reg(source[start..i].to_string()),
                    line,
                });
            }
            b'-' | b'0'..=b'9' => {
                let (tok, len) = lex_number(&source[i..], line)?;
                toks.push(Token { tok, line });
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(PtxError::new(
                    line,
                    format!("unexpected character {:?}", other as char),
                ));
            }
        }
    }
    Ok(toks)
}

fn push(toks: &mut Vec<Token>, tok: Tok, line: u32, i: &mut usize) {
    toks.push(Token { tok, line });
    *i += 1;
}

/// Lexes a numeric literal at the start of `s`; returns the token and
/// consumed byte length.
fn lex_number(s: &str, line: u32) -> Result<(Tok, usize), PtxError> {
    let bytes = s.as_bytes();
    let neg = bytes[0] == b'-';
    let i = usize::from(neg);
    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
        return Err(PtxError::new(line, "bare '-' without numeric literal"));
    }
    // PTX float-bits literals: 0fXXXXXXXX (f32 bits) and 0dXXXXXXXXXXXXXXXX.
    if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'f' {
        let hex_start = i + 2;
        let mut j = hex_start;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        if j - hex_start == 8 {
            let bits = u32::from_str_radix(&s[hex_start..j], 16)
                .map_err(|_| PtxError::new(line, "bad 0f literal"))?;
            let mut v = f32::from_bits(bits) as f64;
            if neg {
                v = -v;
            }
            return Ok((Tok::Float(v), j));
        }
        return Err(PtxError::new(line, "0f literal requires 8 hex digits"));
    }
    if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'd' {
        let hex_start = i + 2;
        let mut j = hex_start;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        if j - hex_start == 16 {
            let bits = u64::from_str_radix(&s[hex_start..j], 16)
                .map_err(|_| PtxError::new(line, "bad 0d literal"))?;
            let mut v = f64::from_bits(bits);
            if neg {
                v = -v;
            }
            return Ok((Tok::Float(v), j));
        }
        return Err(PtxError::new(line, "0d literal requires 16 hex digits"));
    }
    // Hex integer.
    if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
        let hex_start = i + 2;
        let mut j = hex_start;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        if j == hex_start {
            return Err(PtxError::new(line, "empty hex literal"));
        }
        let mag = u64::from_str_radix(&s[hex_start..j], 16)
            .map_err(|_| PtxError::new(line, "hex literal out of range"))?;
        let v = if neg {
            (mag as i64).wrapping_neg()
        } else {
            mag as i64
        };
        return Ok((Tok::Int(v), j));
    }
    // Decimal integer or float.
    let mut j = i;
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    let is_float =
        j < bytes.len() && bytes[j] == b'.' && j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit();
    if is_float {
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j < bytes.len() && (bytes[j] | 0x20) == b'e' {
            j += 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
        }
        let v: f64 = s[..j]
            .parse()
            .map_err(|_| PtxError::new(line, "bad float literal"))?;
        Ok((Tok::Float(v), j))
    } else {
        let mag: u64 = s[i..j]
            .parse()
            .map_err(|_| PtxError::new(line, "integer literal out of range"))?;
        let v = if neg {
            (mag as i64).wrapping_neg()
        } else {
            mag as i64
        };
        Ok((Tok::Int(v), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("ld.global.u32 %r1, [%rd2+4];"),
            vec![
                Tok::Ident("ld".into()),
                Tok::Dot,
                Tok::Ident("global".into()),
                Tok::Dot,
                Tok::Ident("u32".into()),
                Tok::Reg("%r1".into()),
                Tok::Comma,
                Tok::LBracket,
                Tok::Reg("%rd2".into()),
                Tok::Plus,
                Tok::Int(4),
                Tok::RBracket,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("ret; // trailing\n/* block\ncomment */ exit;"),
            vec![
                Tok::Ident("ret".into()),
                Tok::Semi,
                Tok::Ident("exit".into()),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("-7"), vec![Tok::Int(-7)]);
        assert_eq!(toks("0x1F"), vec![Tok::Int(31)]);
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5)]);
        assert_eq!(toks("0f3F800000"), vec![Tok::Float(1.0)]);
        assert_eq!(toks("0d3FF0000000000000"), vec![Tok::Float(1.0)]);
    }

    #[test]
    fn guard_tokens() {
        assert_eq!(
            toks("@!%p1 bra L;"),
            vec![
                Tok::At,
                Tok::Bang,
                Tok::Reg("%p1".into()),
                Tok::Ident("bra".into()),
                Tok::Ident("L".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn special_register_with_dim() {
        assert_eq!(
            toks("mov.u32 %r1, %tid.x;"),
            vec![
                Tok::Ident("mov".into()),
                Tok::Dot,
                Tok::Ident("u32".into()),
                Tok::Reg("%r1".into()),
                Tok::Comma,
                Tok::Reg("%tid".into()),
                Tok::Dot,
                Tok::Ident("x".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("ld # st").is_err());
        assert!(lex("%").is_err());
    }
}
