//! PTX (Parallel Thread eXecution) virtual assembly: parsing, analysis and
//! printing.
//!
//! This crate implements the PTX substrate that BARRACUDA's binary
//! instrumentation framework operates on (paper §4.1). It provides:
//!
//! * a typed AST for a practical subset of PTX ([`ast`]),
//! * a lexer and recursive-descent parser ([`parser`]),
//! * a printer that emits loadable PTX text, so instrumented modules
//!   round-trip ([`printer`]),
//! * control-flow graphs with dominator / post-dominator analysis used for
//!   branch reconvergence ([`mod@cfg`]),
//! * a [`builder::KernelBuilder`] for programmatic kernel construction
//!   (used by the synthetic workload generators).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), barracuda_ptx::PtxError> {
//! let module = barracuda_ptx::parse(
//!     r#"
//!     .version 4.3
//!     .target sm_35
//!     .address_size 64
//!     .visible .entry incr(.param .u64 buf)
//!     {
//!         .reg .b32 %r<4>;
//!         .reg .b64 %rd<4>;
//!         ld.param.u64 %rd1, [buf];
//!         ld.global.u32 %r1, [%rd1];
//!         add.s32 %r1, %r1, 1;
//!         st.global.u32 [%rd1], %r1;
//!         ret;
//!     }
//!     "#,
//! )?;
//! assert_eq!(module.kernels.len(), 1);
//! assert_eq!(module.kernels[0].name, "incr");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod cfg;
pub mod lexer;
pub mod parser;
pub mod printer;

mod error;

pub use ast::{Instruction, Kernel, Module, Op, Reg, Space, Type};
pub use builder::KernelBuilder;
pub use cfg::Cfg;
pub use error::PtxError;

/// Parses a PTX module from source text.
///
/// # Errors
///
/// Returns [`PtxError`] if the source is not syntactically valid PTX (in the
/// subset this crate supports) or fails semantic validation (undeclared
/// registers, type/width mismatches on register classes, duplicate labels).
pub fn parse(source: &str) -> Result<Module, PtxError> {
    parser::parse_module(source)
}
