//! PTX printer: emits modules back to loadable PTX text.
//!
//! The instrumentation framework rewrites parsed modules and re-emits them
//! for loading into the simulator, mirroring the paper's pipeline of
//! regenerating a fat binary with instrumented PTX (§4.1). Printing then
//! re-parsing a module yields a structurally identical module (round-trip
//! property, tested here and under proptest in the crate's test suite).

use crate::ast::*;
use std::fmt::Write as _;

/// Prints a module as PTX source text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".version {}.{}", m.version.0, m.version.1);
    let _ = writeln!(out, ".target {}", m.target);
    let _ = writeln!(out, ".address_size {}", m.address_size);
    for k in &m.kernels {
        out.push('\n');
        print_kernel(&mut out, k);
    }
    out
}

fn print_kernel(out: &mut String, k: &Kernel) {
    let _ = write!(out, ".visible .entry {}(", k.name);
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, ".param .{} {}", p.ty, p.name);
    }
    out.push_str(")\n{\n");
    // Register declarations, one per register (simplest round-trippable form).
    for (_, info) in k.regs.iter() {
        let class = match info.class {
            RegClass::Pred => "pred",
            RegClass::B32 => "b32",
            RegClass::B64 => "b64",
            RegClass::F32 => "f32",
            RegClass::F64 => "f64",
        };
        let _ = writeln!(out, "    .reg .{class} {};", info.name);
    }
    let mut decls: Vec<&SharedDecl> = k.shared.iter().collect();
    decls.sort_by_key(|d| d.offset);
    for d in decls {
        let _ = writeln!(
            out,
            "    .shared .align {} .b8 {}[{}];",
            d.align, d.name, d.size
        );
    }
    for stmt in &k.stmts {
        match stmt {
            Statement::Label(l) => {
                let _ = writeln!(out, "{l}:");
            }
            Statement::Instr(instr) => {
                out.push_str("    ");
                print_instruction(out, k, instr);
                out.push('\n');
            }
        }
    }
    out.push_str("}\n");
}

/// Prints a single instruction (without trailing newline).
pub fn print_instruction(out: &mut String, k: &Kernel, instr: &Instruction) {
    if let Some(g) = instr.guard {
        let bang = if g.negated { "!" } else { "" };
        let _ = write!(out, "@{bang}{} ", k.regs.info(g.pred).name);
    }
    print_op(out, k, &instr.op);
    out.push(';');
}

fn reg_name(k: &Kernel, r: Reg) -> &str {
    &k.regs.info(r).name
}

fn print_operand(out: &mut String, k: &Kernel, o: &Operand) {
    match o {
        Operand::Reg(r) => out.push_str(reg_name(k, *r)),
        Operand::Imm(v) => {
            let _ = write!(out, "{v}");
        }
        Operand::FImm(v) => {
            // Bit-exact float round-trip via the 0d form.
            let _ = write!(out, "0d{:016X}", v.to_bits());
        }
        Operand::Special(s) => out.push_str(&s.name()),
        Operand::Sym(s) => out.push_str(s),
    }
}

fn print_address(out: &mut String, k: &Kernel, a: &Address) {
    out.push('[');
    match &a.base {
        AddrBase::Reg(r) => out.push_str(reg_name(k, *r)),
        AddrBase::Sym(s) => out.push_str(s),
    }
    if a.offset != 0 {
        let _ = write!(out, "+{}", a.offset);
    }
    out.push(']');
}

fn space_dot(space: Space) -> String {
    if space == Space::Generic {
        String::new()
    } else {
        format!(".{}", space.name())
    }
}

fn print_op(out: &mut String, k: &Kernel, op: &Op) {
    match op {
        Op::Ld {
            space,
            cache,
            volatile,
            ty,
            dst,
            addr,
        } => {
            let vol = if *volatile { ".volatile" } else { "" };
            let c = cache.map(|c| format!(".{}", c.name())).unwrap_or_default();
            let _ = write!(
                out,
                "ld{vol}{}{c}.{ty} {}, ",
                space_dot(*space),
                reg_name(k, *dst)
            );
            print_address(out, k, addr);
        }
        Op::St {
            space,
            cache,
            volatile,
            ty,
            addr,
            src,
        } => {
            let vol = if *volatile { ".volatile" } else { "" };
            let c = cache.map(|c| format!(".{}", c.name())).unwrap_or_default();
            let _ = write!(out, "st{vol}{}{c}.{ty} ", space_dot(*space));
            print_address(out, k, addr);
            out.push_str(", ");
            print_operand(out, k, src);
        }
        Op::LdVec {
            space,
            cache,
            volatile,
            ty,
            dsts,
            addr,
        } => {
            let vol = if *volatile { ".volatile" } else { "" };
            let c = cache.map(|c| format!(".{}", c.name())).unwrap_or_default();
            let vn = if dsts.len() == 2 { "v2" } else { "v4" };
            let _ = write!(out, "ld{vol}{}{c}.{vn}.{ty} {{", space_dot(*space));
            for (i, d) in dsts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(reg_name(k, *d));
            }
            out.push_str("}, ");
            print_address(out, k, addr);
        }
        Op::StVec {
            space,
            cache,
            volatile,
            ty,
            addr,
            srcs,
        } => {
            let vol = if *volatile { ".volatile" } else { "" };
            let c = cache.map(|c| format!(".{}", c.name())).unwrap_or_default();
            let vn = if srcs.len() == 2 { "v2" } else { "v4" };
            let _ = write!(out, "st{vol}{}{c}.{vn}.{ty} ", space_dot(*space));
            print_address(out, k, addr);
            out.push_str(", {");
            for (i, s) in srcs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_operand(out, k, s);
            }
            out.push('}');
        }
        Op::Atom {
            space,
            op,
            ty,
            dst,
            addr,
            a,
            b,
        } => {
            let _ = write!(
                out,
                "atom{}.{}.{ty} {}, ",
                space_dot(*space),
                op.name(),
                reg_name(k, *dst)
            );
            print_address(out, k, addr);
            out.push_str(", ");
            print_operand(out, k, a);
            if let Some(b) = b {
                out.push_str(", ");
                print_operand(out, k, b);
            }
        }
        Op::Red {
            space,
            op,
            ty,
            addr,
            a,
        } => {
            let _ = write!(out, "red{}.{}.{ty} ", space_dot(*space), op.name());
            print_address(out, k, addr);
            out.push_str(", ");
            print_operand(out, k, a);
        }
        Op::Membar { level } => {
            let _ = write!(out, "membar.{}", level.name());
        }
        Op::Bar { idx } => {
            let _ = write!(out, "bar.sync {idx}");
        }
        Op::Bra { uni, target } => {
            let u = if *uni { ".uni" } else { "" };
            let _ = write!(out, "bra{u} {target}");
        }
        Op::Setp { cmp, ty, dst, a, b } => {
            let _ = write!(out, "setp.{}.{ty} {}, ", cmp.name(), reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
        }
        Op::Mov { ty, dst, src } => {
            let _ = write!(out, "mov.{ty} {}, ", reg_name(k, *dst));
            print_operand(out, k, src);
        }
        Op::Bin { op, ty, dst, a, b } => {
            let _ = write!(out, "{}.{ty} {}, ", op.name(), reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
        }
        Op::Un { op, ty, dst, a } => {
            let _ = write!(out, "{}.{ty} {}, ", op.name(), reg_name(k, *dst));
            print_operand(out, k, a);
        }
        Op::Mul {
            mode,
            ty,
            dst,
            a,
            b,
        } => {
            let m = if ty.is_float() {
                String::new()
            } else {
                format!(".{}", mode.name())
            };
            let _ = write!(out, "mul{m}.{ty} {}, ", reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
        }
        Op::Mad {
            mode,
            ty,
            dst,
            a,
            b,
            c,
        } => {
            let m = if ty.is_float() {
                String::new()
            } else {
                format!(".{}", mode.name())
            };
            let _ = write!(out, "mad{m}.{ty} {}, ", reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
            out.push_str(", ");
            print_operand(out, k, c);
        }
        Op::Selp { ty, dst, a, b, p } => {
            let _ = write!(out, "selp.{ty} {}, ", reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
            let _ = write!(out, ", {}", reg_name(k, *p));
        }
        Op::Cvt { dty, sty, dst, a } => {
            let _ = write!(out, "cvt.{dty}.{sty} {}, ", reg_name(k, *dst));
            print_operand(out, k, a);
        }
        Op::Cvta {
            to,
            space,
            ty,
            dst,
            a,
        } => {
            let t = if *to { ".to" } else { "" };
            let _ = write!(
                out,
                "cvta{t}{}.{ty} {}, ",
                space_dot(*space),
                reg_name(k, *dst)
            );
            print_operand(out, k, a);
        }
        Op::Shfl {
            mode,
            ty,
            dst,
            a,
            b,
            c,
        } => {
            let _ = write!(out, "shfl.{}.{ty} {}, ", mode.name(), reg_name(k, *dst));
            print_operand(out, k, a);
            out.push_str(", ");
            print_operand(out, k, b);
            out.push_str(", ");
            print_operand(out, k, c);
        }
        Op::Call { target, args } => {
            let _ = write!(out, "call.uni {target}");
            if !args.is_empty() {
                out.push_str(", (");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    print_operand(out, k, a);
                }
                out.push(')');
            }
        }
        Op::Ret => out.push_str("ret"),
        Op::Exit => out.push_str("exit"),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;
    use crate::printer::print_module;

    const SRC: &str = r#"
.version 4.3
.target sm_35
.address_size 64
.visible .entry k(.param .u64 p0, .param .u32 n)
{
    .reg .pred %p<2>;
    .reg .b32 %r<8>;
    .reg .b64 %rd<4>;
    .shared .align 4 .b8 sm[64];
    mov.u32 %r1, %tid.x;
    ld.param.u64 %rd1, [p0];
    cvta.to.global.u64 %rd2, %rd1;
    mul.wide.s32 %rd3, %r1, 4;
    add.s64 %rd3, %rd2, %rd3;
    ld.global.cg.u32 %r2, [%rd3];
    setp.eq.s32 %p1, %r2, 0;
    @%p1 bra L_zero;
    st.shared.u32 [sm+4], %r2;
    atom.global.add.u32 %r3, [%rd3], 1;
    bra.uni L_end;
L_zero:
    membar.gl;
    st.global.u32 [%rd3], 7;
L_end:
    bar.sync 0;
    selp.b32 %r4, 1, 0, %p1;
    ret;
}
"#;

    #[test]
    fn round_trip_structural_equality() {
        let m1 = parse(SRC).unwrap();
        let text = print_module(&m1);
        let m2 = parse(&text).expect("printed module must reparse");
        assert_eq!(m1.kernels.len(), m2.kernels.len());
        let (k1, k2) = (&m1.kernels[0], &m2.kernels[0]);
        assert_eq!(k1.params, k2.params);
        assert_eq!(k1.shared, k2.shared);
        assert_eq!(k1.stmts, k2.stmts);
    }

    #[test]
    fn double_round_trip_fixpoint() {
        let m1 = parse(SRC).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse(&t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn float_immediates_round_trip_bit_exact() {
        let src = ".version 4.3\n.target sm_35\n.address_size 64\n.visible .entry k()\n{\n.reg .f32 %f<2>;\nmov.f32 %f1, 0f3F8CCCCD;\nret;\n}".to_string();
        let m1 = parse(&src).unwrap();
        let m2 = parse(&print_module(&m1)).unwrap();
        assert_eq!(m1.kernels[0].stmts, m2.kernels[0].stmts);
    }
}
