//! Programmatic kernel construction.
//!
//! [`KernelBuilder`] is used by the synthetic workload generators
//! (`barracuda-workloads`) to build Table-1-scale kernels without going
//! through text, and by tests that need small ad-hoc kernels.

use crate::ast::*;

/// Incrementally builds a [`Kernel`].
///
/// # Example
///
/// ```
/// use barracuda_ptx::builder::KernelBuilder;
/// use barracuda_ptx::ast::{RegClass, Space, Type, Address, Operand, SpecialReg, Dim, Op};
///
/// let mut b = KernelBuilder::new("incr");
/// b.param("buf", Type::U64);
/// let rd = b.reg("%rd1", RegClass::B64);
/// let r = b.reg("%r1", RegClass::B32);
/// b.push(Op::Ld { space: Space::Param, cache: None, volatile: false,
///                 ty: Type::U64, dst: rd, addr: Address::sym("buf") });
/// b.push(Op::Ld { space: Space::Global, cache: None, volatile: false,
///                 ty: Type::U32, dst: r, addr: Address::reg(rd) });
/// b.push(Op::Bin { op: barracuda_ptx::ast::BinOp::Add, ty: Type::S32,
///                  dst: r, a: Operand::Reg(r), b: Operand::Imm(1) });
/// b.push(Op::St { space: Space::Global, cache: None, volatile: false,
///                 ty: Type::U32, addr: Address::reg(rd), src: Operand::Reg(r) });
/// b.push(Op::Ret);
/// let kernel = b.build();
/// assert_eq!(kernel.static_instruction_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    regs: RegFile,
    shared: Vec<SharedDecl>,
    stmts: Vec<Statement>,
    next_label: u32,
}

impl KernelBuilder {
    /// Starts building a kernel with the given entry name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            params: Vec::new(),
            regs: RegFile::new(),
            shared: Vec::new(),
            stmts: Vec::new(),
            next_label: 0,
        }
    }

    /// Adds a kernel parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.params.push(Param {
            name: name.into(),
            ty,
        });
        self
    }

    /// Declares a named register.
    pub fn reg(&mut self, name: impl Into<String>, class: RegClass) -> Reg {
        self.regs.declare(name, class)
    }

    /// Allocates an anonymous register.
    pub fn fresh(&mut self, class: RegClass) -> Reg {
        self.regs.alloc(class)
    }

    /// Declares a `.shared` array of `size` bytes, returning its name.
    pub fn shared(&mut self, name: impl Into<String>, size: u64, align: u32) -> String {
        let name = name.into();
        let prev_end = self
            .shared
            .iter()
            .map(|s| s.offset + s.size)
            .max()
            .unwrap_or(0);
        let a = u64::from(align.max(1));
        let offset = prev_end.div_ceil(a) * a;
        self.shared.push(SharedDecl {
            name: name.clone(),
            align,
            size,
            offset,
        });
        name
    }

    /// Appends an unguarded instruction.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.stmts.push(Statement::Instr(Instruction::new(op)));
        self
    }

    /// Appends a guarded instruction.
    pub fn push_guarded(&mut self, pred: Reg, negated: bool, op: Op) -> &mut Self {
        self.stmts
            .push(Statement::Instr(Instruction::guarded(pred, negated, op)));
        self
    }

    /// Emits a label with the given name.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.stmts.push(Statement::Label(name.into()));
        self
    }

    /// Generates a fresh, unique label name (not yet emitted).
    pub fn fresh_label(&mut self, hint: &str) -> String {
        let l = format!("L_{hint}_{}", self.next_label);
        self.next_label += 1;
        l
    }

    /// Convenience: `mov.u32 dst, %tid.x` etc. — loads a special register.
    pub fn mov_special(&mut self, dst: Reg, sr: SpecialReg) -> &mut Self {
        self.push(Op::Mov {
            ty: Type::U32,
            dst,
            src: Operand::Special(sr),
        })
    }

    /// Convenience: computes the global linear thread id
    /// `ctaid.x * ntid.x + tid.x` into a fresh b32 register.
    pub fn linear_tid(&mut self) -> Reg {
        let tid = self.fresh(RegClass::B32);
        let ctaid = self.fresh(RegClass::B32);
        let ntid = self.fresh(RegClass::B32);
        let out = self.fresh(RegClass::B32);
        self.mov_special(tid, SpecialReg::Tid(Dim::X));
        self.mov_special(ctaid, SpecialReg::Ctaid(Dim::X));
        self.mov_special(ntid, SpecialReg::Ntid(Dim::X));
        self.push(Op::Mad {
            mode: MulMode::Lo,
            ty: Type::S32,
            dst: out,
            a: Operand::Reg(ctaid),
            b: Operand::Reg(ntid),
            c: Operand::Reg(tid),
        });
        out
    }

    /// Convenience: loads a `.param .u64` pointer into a fresh b64 register.
    pub fn load_param_ptr(&mut self, name: &str) -> Reg {
        let rd = self.fresh(RegClass::B64);
        self.push(Op::Ld {
            space: Space::Param,
            cache: None,
            volatile: false,
            ty: Type::U64,
            dst: rd,
            addr: Address::sym(name),
        });
        rd
    }

    /// Convenience: `addr = base + idx32 * scale` into a fresh b64 register.
    pub fn index_addr(&mut self, base: Reg, idx: Reg, scale: i64) -> Reg {
        let off = self.fresh(RegClass::B64);
        let out = self.fresh(RegClass::B64);
        self.push(Op::Mul {
            mode: MulMode::Wide,
            ty: Type::S32,
            dst: off,
            a: Operand::Reg(idx),
            b: Operand::Imm(scale),
        });
        self.push(Op::Bin {
            op: BinOp::Add,
            ty: Type::S64,
            dst: out,
            a: Operand::Reg(base),
            b: Operand::Reg(off),
        });
        out
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Statement::Instr(_)))
            .count()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the kernel.
    pub fn build(self) -> Kernel {
        Kernel {
            name: self.name,
            params: self.params,
            regs: self.regs,
            shared: self.shared,
            stmts: self.stmts,
        }
    }

    /// Finishes the kernel and wraps it in a single-kernel [`Module`].
    pub fn build_module(self) -> Module {
        let mut m = Module::new();
        m.kernels.push(self.build());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, FlatKernel};
    use crate::printer::print_module;

    #[test]
    fn builder_produces_parsable_module() {
        let mut b = KernelBuilder::new("k");
        b.param("buf", Type::U64);
        let tid = b.linear_tid();
        let ptr = b.load_param_ptr("buf");
        let addr = b.index_addr(ptr, tid, 4);
        b.push(Op::St {
            space: Space::Global,
            cache: None,
            volatile: false,
            ty: Type::U32,
            addr: Address::reg(addr),
            src: Operand::Reg(tid),
        });
        b.push(Op::Ret);
        let m = b.build_module();
        let text = print_module(&m);
        let m2 = crate::parse(&text).expect("builder output must reparse");
        assert_eq!(m.kernels[0].stmts, m2.kernels[0].stmts);
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut b = KernelBuilder::new("k");
        let l1 = b.fresh_label("loop");
        let l2 = b.fresh_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn builder_shared_layout_matches_parser_rules() {
        let mut b = KernelBuilder::new("k");
        b.shared("a", 10, 4);
        b.shared("b", 8, 8);
        b.push(Op::Ret);
        let k = b.build();
        assert_eq!(k.shared_offset("a"), Some(0));
        assert_eq!(k.shared_offset("b"), Some(16));
    }

    #[test]
    fn built_kernels_have_valid_cfgs() {
        let mut b = KernelBuilder::new("k");
        let p = b.reg("%p", RegClass::Pred);
        let r = b.reg("%r1", RegClass::B32);
        let end = b.fresh_label("end");
        b.push(Op::Setp {
            cmp: CmpOp::Eq,
            ty: Type::S32,
            dst: p,
            a: Operand::Reg(r),
            b: Operand::Imm(0),
        });
        b.push_guarded(
            p,
            false,
            Op::Bra {
                uni: false,
                target: end.clone(),
            },
        );
        b.push(Op::Mov {
            ty: Type::U32,
            dst: r,
            src: Operand::Imm(1),
        });
        b.label(end);
        b.push(Op::Ret);
        let k = b.build();
        let flat = FlatKernel::from_kernel(&k);
        let cfg = Cfg::build(&flat);
        assert_eq!(cfg.blocks.len(), 3);
    }
}
