//! Control-flow graphs, dominators and post-dominators.
//!
//! The SIMT simulator uses the *immediate post-dominator* of a conditional
//! branch as its reconvergence point, matching the hardware SIMT-stack
//! behaviour described by Fung et al. (paper reference \[24\]) that BARRACUDA
//! models with its `if`/`else`/`fi` trace operations.

use crate::ast::{Instruction, Kernel, Op, Statement};
use std::collections::HashMap;

/// Basic-block identifier (index into [`Cfg::blocks`]).
pub type BlockId = usize;

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // payloads are self-describing
pub enum Terminator {
    /// Falls through to the next block (no branch at the end).
    Fallthrough(BlockId),
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional (guarded) branch: taken target and fallthrough.
    CondJump {
        taken: BlockId,
        fallthrough: BlockId,
    },
    /// Kernel exit (`ret`/`exit`, or a branch past the last instruction).
    Exit,
}

/// A basic block: the half-open instruction range `[start, end)` in the
/// flattened instruction list.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// How control leaves the block.
    pub term: Terminator,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Successor blocks of this block.
    pub fn succs(&self) -> Vec<BlockId> {
        match self.term {
            Terminator::Fallthrough(b) | Terminator::Jump(b) => vec![b],
            Terminator::CondJump { taken, fallthrough } => {
                if taken == fallthrough {
                    vec![taken]
                } else {
                    vec![taken, fallthrough]
                }
            }
            Terminator::Exit => vec![],
        }
    }
}

/// A kernel flattened to an instruction array with resolved labels.
#[derive(Debug, Clone)]
pub struct FlatKernel {
    /// Instructions in order (labels removed).
    pub instrs: Vec<Instruction>,
    /// Label name → index of the first instruction at/after the label.
    /// A label at the very end of the body maps to `instrs.len()`.
    pub labels: HashMap<String, usize>,
}

impl FlatKernel {
    /// Flattens a kernel's statement list.
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let mut instrs = Vec::new();
        let mut labels = HashMap::new();
        for stmt in &kernel.stmts {
            match stmt {
                Statement::Label(l) => {
                    labels.insert(l.clone(), instrs.len());
                }
                Statement::Instr(i) => instrs.push(i.clone()),
            }
        }
        FlatKernel { instrs, labels }
    }

    /// Resolves a branch target to an instruction index (`instrs.len()`
    /// means "exit").
    pub fn target(&self, label: &str) -> Option<usize> {
        self.labels.get(label).copied()
    }

    /// The first branch label that does not resolve to an instruction
    /// index, if any. A `Some` result means the kernel is malformed and
    /// [`Cfg::build`] would panic on it.
    pub fn unknown_label(&self) -> Option<&str> {
        self.instrs.iter().find_map(|i| match &i.op {
            Op::Bra { target, .. } if !self.labels.contains_key(target) => Some(target.as_str()),
            _ => None,
        })
    }
}

/// Control-flow graph over a [`FlatKernel`].
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in layout order.
    pub blocks: Vec<Block>,
    /// Instruction index → owning block.
    pub block_of: Vec<BlockId>,
    /// Immediate post-dominator of each block (`None` when the block cannot
    /// reach the exit, e.g. inside an infinite loop).
    ipdom: Vec<Option<BlockId>>,
}

impl Cfg {
    /// Builds the CFG after checking every branch label resolves, returning
    /// the first unresolved label instead of panicking. This is the entry
    /// point loaders should use on untrusted (hand-built) kernels.
    ///
    /// # Errors
    ///
    /// Returns the offending label name when a branch targets an unknown
    /// label.
    pub fn try_build(flat: &FlatKernel) -> Result<Self, String> {
        match flat.unknown_label() {
            Some(l) => Err(l.to_string()),
            None => Ok(Self::build(flat)),
        }
    }

    /// Builds the CFG and post-dominator tree for a flattened kernel.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets an unknown label (the parser validates
    /// this, so it indicates a malformed hand-built kernel); use
    /// [`Cfg::try_build`] to get an error instead.
    pub fn build(flat: &FlatKernel) -> Self {
        let n = flat.instrs.len();
        if n == 0 {
            return Cfg {
                blocks: vec![],
                block_of: vec![],
                ipdom: vec![],
            };
        }
        // 1. Identify leaders.
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        for (i, instr) in flat.instrs.iter().enumerate() {
            match &instr.op {
                Op::Bra { target, .. } => {
                    let t = flat
                        .target(target)
                        .unwrap_or_else(|| panic!("unknown branch target {target}"));
                    if t < n {
                        leader[t] = true;
                    }
                    if i < n {
                        leader[(i + 1).min(n)] = true;
                    }
                }
                Op::Ret | Op::Exit => {
                    leader[(i + 1).min(n)] = true;
                }
                _ => {}
            }
        }
        // 2. Build blocks.
        let mut starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        starts.push(n);
        let mut block_of = vec![0usize; n];
        let mut block_start = HashMap::new();
        for (b, w) in starts.windows(2).enumerate() {
            block_start.insert(w[0], b);
            for slot in &mut block_of[w[0]..w[1]] {
                *slot = b;
            }
        }
        let nb = starts.len() - 1;
        let block_at = |idx: usize| -> Option<BlockId> {
            if idx >= n {
                None
            } else {
                Some(block_of[idx])
            }
        };
        let mut blocks = Vec::with_capacity(nb);
        for (b, w) in starts.windows(2).enumerate() {
            let (start, end) = (w[0], w[1]);
            let last = &flat.instrs[end - 1];
            let term = match &last.op {
                Op::Bra { target, .. } => {
                    let t = flat.target(target).expect("validated");
                    match (block_at(t), last.guard.is_some()) {
                        (Some(tb), false) => Terminator::Jump(tb),
                        (None, false) => Terminator::Exit,
                        (tb, true) => {
                            let fall = block_at(end);
                            match (tb, fall) {
                                (Some(tb), Some(f)) => Terminator::CondJump {
                                    taken: tb,
                                    fallthrough: f,
                                },
                                (Some(tb), None) => Terminator::CondJump {
                                    taken: tb,
                                    fallthrough: tb,
                                },
                                // Conditional jump to exit: model as a jump to a
                                // virtual exit from either path.
                                (None, Some(f)) => Terminator::CondJump {
                                    taken: f,
                                    fallthrough: f,
                                },
                                (None, None) => Terminator::Exit,
                            }
                        }
                    }
                }
                Op::Ret | Op::Exit => Terminator::Exit,
                _ => match block_at(end) {
                    Some(f) => Terminator::Fallthrough(f),
                    None => Terminator::Exit,
                },
            };
            let _ = b;
            blocks.push(Block {
                start,
                end,
                term,
                preds: vec![],
            });
        }
        // 3. Predecessors.
        for b in 0..nb {
            for s in blocks[b].succs() {
                blocks[s].preds.push(b);
            }
        }
        // 4. Post-dominators: dominators of the reversed CFG rooted at a
        // virtual exit node (id = nb).
        let exit = nb;
        let rev_succs: Vec<Vec<usize>> = (0..=nb)
            .map(|v| {
                if v == exit {
                    (0..nb)
                        .filter(|&b| matches!(blocks[b].term, Terminator::Exit))
                        .collect()
                } else {
                    blocks[v].preds.clone()
                }
            })
            .collect();
        let rev_preds: Vec<Vec<usize>> = {
            let mut p = vec![Vec::new(); nb + 1];
            for (v, ss) in rev_succs.iter().enumerate() {
                for &s in ss {
                    p[s].push(v);
                }
            }
            p
        };
        let idom = dominators(nb + 1, exit, &rev_succs, &rev_preds);
        let ipdom = (0..nb)
            .map(|b| match idom[b] {
                Some(d) if d != exit => Some(d),
                _ => None,
            })
            .collect();
        Cfg {
            blocks,
            block_of,
            ipdom,
        }
    }

    /// Immediate post-dominator of `b`, or `None` if control from `b` never
    /// rejoins before exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b]
    }

    /// The reconvergence *instruction index* for a conditional branch ending
    /// block `b`: the start of the immediate post-dominator block, or
    /// `None` when the paths only rejoin at kernel exit.
    pub fn reconvergence_point(&self, b: BlockId) -> Option<usize> {
        self.ipdom(b).map(|d| self.blocks[d].start)
    }
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy) on an arbitrary
/// graph given per-node successor and predecessor lists. Returns, for each
/// node, its immediate dominator (the root dominates itself). Nodes
/// unreachable from the root get `None`.
fn dominators(
    n: usize,
    root: usize,
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
) -> Vec<Option<usize>> {
    // Reverse post-order from root.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = vec![(root, 0usize)];
    visited[root] = true;
    while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
        if *ci < succs[v].len() {
            let c = succs[v][*ci];
            *ci += 1;
            if !visited[c] {
                visited[c] = true;
                stack.push((c, 0));
            }
        } else {
            order.push(v);
            stack.pop();
        }
    }
    order.reverse(); // now RPO
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rpo_num[v] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].expect("processed");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in order.iter().skip(1) {
            let mut new_idom = None;
            for &p in &preds[v] {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
            }
            if new_idom.is_some() && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    idom[root] = None; // root has no strict dominator; callers special-case it
    let mut res = idom;
    res[root] = Some(root);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn cfg_of(body: &str) -> (FlatKernel, Cfg) {
        let src = format!(
            ".version 4.3\n.target sm_35\n.address_size 64\n.visible .entry k()\n{{\n{body}\n}}"
        );
        let m = parse(&src).unwrap();
        let flat = FlatKernel::from_kernel(&m.kernels[0]);
        let cfg = Cfg::build(&flat);
        (flat, cfg)
    }

    #[test]
    fn straight_line_single_block() {
        let (_, cfg) = cfg_of(".reg .b32 %r<3>;\nmov.u32 %r1, 1;\nadd.s32 %r2, %r1, 1;\nret;");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, Terminator::Exit);
    }

    #[test]
    fn if_else_diamond() {
        // b0: setp, cond-bra L_else ; b1: then ; b2(L_else): else ; b3(L_end): join
        let (_, cfg) = cfg_of(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             setp.eq.s32 %p, %r1, 0;\n\
             @%p bra L_else;\n\
             mov.u32 %r2, 1;\n\
             bra.uni L_end;\n\
             L_else:\n\
             mov.u32 %r2, 2;\n\
             L_end:\n\
             mov.u32 %r3, %r2;\n\
             ret;",
        );
        assert_eq!(cfg.blocks.len(), 4);
        match cfg.blocks[0].term {
            Terminator::CondJump { taken, fallthrough } => {
                assert_eq!(taken, 2);
                assert_eq!(fallthrough, 1);
            }
            ref t => panic!("{t:?}"),
        }
        // The branch block's ipdom is the join block.
        assert_eq!(cfg.ipdom(0), Some(3));
        assert_eq!(cfg.ipdom(1), Some(3));
        assert_eq!(cfg.ipdom(2), Some(3));
        assert_eq!(cfg.ipdom(3), None);
        // Reconvergence instruction: start of block 3.
        assert_eq!(cfg.reconvergence_point(0), Some(cfg.blocks[3].start));
    }

    #[test]
    fn triangle_if_without_else() {
        let (_, cfg) = cfg_of(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             setp.eq.s32 %p, %r1, 0;\n\
             @%p bra L_end;\n\
             mov.u32 %r2, 1;\n\
             L_end:\n\
             ret;",
        );
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.ipdom(0), Some(2));
    }

    #[test]
    fn loop_backward_branch() {
        let (_, cfg) = cfg_of(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             mov.u32 %r1, 0;\n\
             L_loop:\n\
             add.s32 %r1, %r1, 1;\n\
             setp.lt.s32 %p, %r1, 10;\n\
             @%p bra L_loop;\n\
             ret;",
        );
        // b0: entry, b1: loop body (branch), b2: exit
        assert_eq!(cfg.blocks.len(), 3);
        match cfg.blocks[1].term {
            Terminator::CondJump { taken, fallthrough } => {
                assert_eq!(taken, 1);
                assert_eq!(fallthrough, 2);
            }
            ref t => panic!("{t:?}"),
        }
        // Loop branch reconverges at the block after the loop.
        assert_eq!(cfg.ipdom(1), Some(2));
    }

    #[test]
    fn infinite_loop_has_no_ipdom() {
        let (_, cfg) = cfg_of(
            ".reg .b32 %r<2>;\n\
             L:\n\
             add.s32 %r1, %r1, 1;\n\
             bra.uni L;\n\
             ret;",
        );
        // The loop block cannot reach exit.
        assert_eq!(cfg.ipdom(0), None);
    }

    #[test]
    fn nested_if() {
        let (_, cfg) = cfg_of(
            ".reg .pred %p<3>;\n.reg .b32 %r<6>;\n\
             setp.eq.s32 %p1, %r1, 0;\n\
             @%p1 bra L_outer_end;\n\
             setp.eq.s32 %p2, %r2, 0;\n\
             @%p2 bra L_inner_end;\n\
             mov.u32 %r3, 1;\n\
             L_inner_end:\n\
             mov.u32 %r4, 2;\n\
             L_outer_end:\n\
             ret;",
        );
        // Blocks: 0 (outer branch), 1 (inner branch), 2 (inner then),
        // 3 (inner join), 4 (outer join).
        assert_eq!(cfg.blocks.len(), 5);
        assert_eq!(cfg.ipdom(0), Some(4));
        assert_eq!(cfg.ipdom(1), Some(3));
    }

    #[test]
    fn block_of_maps_every_instruction() {
        let (flat, cfg) = cfg_of(
            ".reg .pred %p;\n.reg .b32 %r<4>;\n\
             setp.eq.s32 %p, %r1, 0;\n\
             @%p bra L;\n\
             mov.u32 %r2, 1;\n\
             L:\n\
             ret;",
        );
        assert_eq!(cfg.block_of.len(), flat.instrs.len());
        for (i, &b) in cfg.block_of.iter().enumerate() {
            assert!(cfg.blocks[b].start <= i && i < cfg.blocks[b].end);
        }
    }

    #[test]
    fn unknown_label_detected_without_panic() {
        let flat = FlatKernel {
            instrs: vec![Instruction::new(Op::Bra {
                uni: true,
                target: "L_missing".into(),
            })],
            labels: HashMap::new(),
        };
        assert_eq!(flat.unknown_label(), Some("L_missing"));
        assert_eq!(Cfg::try_build(&flat).err(), Some("L_missing".to_string()));

        let (flat, _) = cfg_of(".reg .b32 %r<2>;\nmov.u32 %r1, 1;\nret;");
        assert_eq!(flat.unknown_label(), None);
        assert!(Cfg::try_build(&flat).is_ok());
    }

    #[test]
    fn branch_to_end_label_is_exit() {
        let (_, cfg) = cfg_of(
            ".reg .b32 %r<2>;\n\
             bra.uni L_done;\n\
             L_done:",
        );
        // Label at very end: branch resolves past last instruction → Exit.
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, Terminator::Exit);
    }
}
