#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, lint wall, bench smoke.
#
# Usage: scripts/verify.sh
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> docs: cargo doc --no-deps (warnings denied, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p barracuda -p barracuda-core -p barracuda-trace -p barracuda-simt \
  -p barracuda-ptx -p barracuda-instrument -p barracuda-suite \
  -p barracuda-racecheck -p barracuda-workloads -p barracuda-bench

echo "==> bench smoke: bench_interp --quick"
./target/release/bench_interp --quick --out /tmp/bench_interp_smoke.json
rm -f /tmp/bench_interp_smoke.json

echo "==> bench smoke: bench_engine --quick"
./target/release/bench_engine --quick --out /tmp/bench_engine_smoke.json
rm -f /tmp/bench_engine_smoke.json

echo "verify: OK"
