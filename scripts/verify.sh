#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, lint wall, bench smoke.
#
# Usage: scripts/verify.sh
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace: cargo build --release --workspace (bench + server binaries)"
cargo build --release --workspace

echo "==> workspace: cargo test -q --workspace"
cargo test -q --workspace

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> docs: cargo doc --no-deps (warnings denied, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p barracuda -p barracuda-core -p barracuda-trace -p barracuda-simt \
  -p barracuda-ptx -p barracuda-instrument -p barracuda-suite \
  -p barracuda-racecheck -p barracuda-workloads -p barracuda-bench \
  -p barracuda-serve

echo "==> bench smoke: bench_interp --quick"
./target/release/bench_interp --quick --out /tmp/bench_interp_smoke.json
rm -f /tmp/bench_interp_smoke.json

echo "==> bench smoke: bench_engine --quick"
./target/release/bench_engine --quick --out /tmp/bench_engine_smoke.json
rm -f /tmp/bench_engine_smoke.json

echo "==> bench smoke: bench_serve --quick"
./target/release/bench_serve --quick --out /tmp/bench_serve_smoke.json
rm -f /tmp/bench_serve_smoke.json

echo "==> bench smoke: bench_detector --quick"
./target/release/bench_detector --quick --out /tmp/bench_detector_smoke.json
rm -f /tmp/bench_detector_smoke.json

echo "==> worker-scaling gate: bench_detector --gate (sharded threaded >= sync on coalesced)"
./target/release/bench_detector --gate

echo "==> shadow fast-path differential: core proptests + 66-program parity (both pipeline modes)"
cargo test -q -p barracuda-core --test shadow_fastpath
cargo test -q -p barracuda-suite --test fastpath_parity

echo "==> sharded routing differential: core proptests + 66-program parity (sharded pipeline)"
cargo test -q -p barracuda-core --test sharded_routing
cargo test -q -p barracuda-suite --test sharded_parity

echo "==> interleave parity: 66 verdicts + 11 multi race sets under co-resident scheduling (all policies x seeds x pipelines)"
cargo test -q -p barracuda-suite --test interleave_parity
cargo test -q -p barracuda-core --test two_stream_diff
cargo test -q -p barracuda-simt --test coresident_props

echo "==> interleave seed sweep: litmus set under 3 seeds x 2 seeded policies (+ round-robin)"
cargo test -q -p barracuda-workloads --test interkernel_litmus
INTERLEAVE_PTX="/tmp/barracuda_verify_interleave_$$.ptx"
cat > "$INTERLEAVE_PTX" <<'EOF'
.version 4.3
.target sm_35
.address_size 64
.visible .entry k(.param .u64 buf)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    ld.global.u32 %r1, [%rd1];
    add.s32 %r1, %r1, 1;
    st.global.u32 [%rd1], %r1;
    ret;
}
EOF
for POLICY in random starve; do
  for SEED in 1 7 42; do
    set +e
    ./target/release/barracuda check "$INTERLEAVE_PTX" --kernel k --grid 2 --block 32 \
      --param buf:4 --interleave --sched-policy "$POLICY" --sched-seed "$SEED" > /dev/null
    CODE=$?
    set -e
    [ "$CODE" -eq 1 ] || { echo "verify: interleave $POLICY/$SEED exit $CODE, want 1 (racy)"; exit 1; }
  done
done
set +e
./target/release/barracuda check "$INTERLEAVE_PTX" --kernel k --grid 2 --block 32 \
  --param buf:4 --interleave > /dev/null
CODE=$?
set -e
[ "$CODE" -eq 1 ] || { echo "verify: interleave round-robin exit $CODE, want 1 (racy)"; exit 1; }
rm -f "$INTERLEAVE_PTX"

echo "==> server smoke: serve/client over a unix socket"
SOCK="/tmp/barracuda_verify_$$.sock"
RACY_PTX="/tmp/barracuda_verify_racy_$$.ptx"
CLEAN_PTX="/tmp/barracuda_verify_clean_$$.ptx"
cat > "$RACY_PTX" <<'EOF'
.version 4.3
.target sm_35
.address_size 64
.visible .entry k(.param .u64 buf)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    ld.global.u32 %r1, [%rd1];
    add.s32 %r1, %r1, 1;
    st.global.u32 [%rd1], %r1;
    ret;
}
EOF
sed 's/ld.global.u32 %r1, \[%rd1\];/atom.global.add.u32 %r1, [%rd1], 1;/; /add.s32 %r1, %r1, 1;/d; /st.global.u32 \[%rd1\], %r1;/d' \
  "$RACY_PTX" > "$CLEAN_PTX"
timeout 60 ./target/release/barracuda serve --socket "$SOCK" &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || { echo "verify: server socket never appeared"; exit 1; }
set +e
./target/release/barracuda client --socket "$SOCK" "$RACY_PTX" \
  --kernel k --grid 2 --block 32 --param buf:4 > /dev/null
RACY_CODE=$?
./target/release/barracuda client --socket "$SOCK" "$CLEAN_PTX" \
  --kernel k --grid 2 --block 32 --param buf:4 > /dev/null
CLEAN_CODE=$?
./target/release/barracuda client --socket "$SOCK" --shutdown
SHUTDOWN_CODE=$?
set -e
wait "$SERVER_PID"
rm -f "$RACY_PTX" "$CLEAN_PTX"
[ "$RACY_CODE" -eq 1 ] || { echo "verify: racy request exit $RACY_CODE, want 1"; exit 1; }
[ "$CLEAN_CODE" -eq 0 ] || { echo "verify: clean request exit $CLEAN_CODE, want 0"; exit 1; }
[ "$SHUTDOWN_CODE" -eq 0 ] || { echo "verify: shutdown exit $SHUTDOWN_CODE, want 0"; exit 1; }

echo "==> chaos soak: fixed-seed server soak test"
cargo test -q -p barracuda-serve --test soak

echo "verify: OK"
