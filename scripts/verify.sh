#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, lint wall, bench smoke.
#
# Usage: scripts/verify.sh
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> bench smoke: bench_interp --quick"
./target/release/bench_interp --quick --out /tmp/bench_interp_smoke.json
rm -f /tmp/bench_interp_smoke.json

echo "verify: OK"
