//! Full Table-1 sweep: all 26 synthetic benchmarks run under detection at
//! quick scale; every race count and memory space must match the paper's
//! Table 1.

use barracuda_repro::barracuda::Barracuda;
use barracuda_repro::trace::MemSpace;
use barracuda_repro::workloads::{all_workloads, Scale};

#[test]
fn all_26_workloads_match_table1_race_content() {
    let scale = Scale::quick();
    let mut failures = Vec::new();
    for w in all_workloads() {
        let inst = w.generate(&scale);
        let mut bar = Barracuda::new();
        let params = inst.alloc_params(bar.gpu_mut());
        let analysis = match bar.check_module(&inst.module, &inst.kernel, inst.dims, &params) {
            Ok(a) => a,
            Err(e) => {
                failures.push(format!("{}: failed to run: {e}", w.name));
                continue;
            }
        };
        if analysis.race_count() as u32 != w.paper.races {
            failures.push(format!(
                "{}: found {} races, paper reports {}",
                w.name,
                analysis.race_count(),
                w.paper.races
            ));
            continue;
        }
        let (shared, global) = analysis.space_counts();
        let space_ok = match w.paper.race_space {
            None => shared == 0 && global == 0,
            Some(MemSpace::Shared) => shared as u32 == w.paper.races && global == 0,
            Some(MemSpace::Global) => global as u32 == w.paper.races && shared == 0,
        };
        if !space_ok {
            failures.push(format!(
                "{}: races in wrong space (shared {shared}, global {global})",
                w.name
            ));
        }
        if !analysis.diagnostics().is_empty() {
            failures.push(format!(
                "{}: unexpected diagnostics {:?}",
                w.name,
                analysis.diagnostics()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn instrumentation_stats_are_sane_across_workloads() {
    let scale = Scale::quick();
    for w in all_workloads() {
        let inst = w.generate(&scale);
        let (_, unopt) = barracuda_repro::instrument::instrument_module(
            &inst.module,
            &barracuda_repro::instrument::InstrumentOptions::unoptimized(),
        );
        let (_, opt) = barracuda_repro::instrument::instrument_module(
            &inst.module,
            &barracuda_repro::instrument::InstrumentOptions::default(),
        );
        // Fig. 9: "BARRACUDA never instruments more than half of the
        // instructions among our benchmarks".
        assert!(
            unopt.instrumented_fraction() <= 0.55,
            "{}: {:.2}",
            w.name,
            unopt.instrumented_fraction()
        );
        assert!(
            opt.instrumented_fraction() <= unopt.instrumented_fraction(),
            "{}",
            w.name
        );
        assert!(opt.log_calls > 0, "{}", w.name);
    }
}
