//! `shfl` warp shuffles: register exchange within a warp — the
//! memory-free warp-synchronous primitive. Shuffles never touch memory, so
//! they are not instrumented and cannot race; a butterfly-shuffle
//! reduction is the canonical race-free alternative to shared-memory
//! warp code.

use barracuda_repro::barracuda::{Barracuda, KernelRun};
use barracuda_repro::simt::{Gpu, GpuConfig, ParamValue};
use barracuda_repro::trace::GridDims;

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

/// Butterfly reduction: after log2(32) xor-shuffle rounds every lane holds
/// the warp-wide sum.
fn butterfly_reduce_src() -> String {
    let mut body = String::from(
        ".reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         mov.u32 %r2, %r1;\n",
    );
    for s in [16, 8, 4, 2, 1] {
        body.push_str(&format!(
            "shfl.bfly.b32 %r3, %r2, {s}, 31;\nadd.s32 %r2, %r2, %r3;\n"
        ));
    }
    body.push_str(
        "mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r2;\n\
         ret;\n",
    );
    format!("{HEADER}.visible .entry reduce(.param .u64 out)\n{{\n{body}}}")
}

#[test]
fn shfl_parses_and_round_trips() {
    let src = format!(
        "{HEADER}.visible .entry k()\n{{\n.reg .b32 %r<4>;\n\
         shfl.up.b32 %r1, %r2, 1, 0;\n\
         shfl.down.b32 %r1, %r2, 2, 31;\n\
         shfl.bfly.b32 %r1, %r2, 16, 31;\n\
         shfl.idx.b32 %r1, %r2, 0, 31;\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let text = barracuda_ptx::printer::print_module(&m);
    let m2 = barracuda_ptx::parse(&text).expect("round trip");
    assert_eq!(m.kernels[0].stmts, m2.kernels[0].stmts);
}

#[test]
fn butterfly_reduction_computes_warp_sum() {
    let m = barracuda_ptx::parse(&butterfly_reduce_src()).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let out = gpu.malloc(32 * 4);
    gpu.launch(
        &m,
        "reduce",
        GridDims::new(1u32, 32u32),
        &[ParamValue::Ptr(out)],
    )
    .unwrap();
    let expect: u32 = (0..32).sum(); // 496
    assert_eq!(gpu.read_u32s(out, 32), vec![expect; 32]);
}

#[test]
fn shfl_reduction_is_race_free_under_detection() {
    let src = butterfly_reduce_src();
    let mut bar = Barracuda::new();
    let out = bar.gpu_mut().malloc(32 * 4);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "reduce",
            dims: GridDims::new(1u32, 32u32),
            params: &[ParamValue::Ptr(out)],
        })
        .unwrap();
    assert!(a.is_clean(), "{:?}", a.races());
    // Shuffles are register exchanges: only the final store is logged.
    assert_eq!(a.stats().instrument.log_calls, 1);
}

#[test]
fn shfl_modes_select_expected_lanes() {
    // Each lane writes the value it received from shfl.down by 1:
    // lane i gets lane i+1's tid; the last lane keeps its own.
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 out)\n{{\n\
         .reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         shfl.down.b32 %r2, %r1, 1, 31;\n\
         mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r2;\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let out = gpu.malloc(32 * 4);
    gpu.launch(&m, "k", GridDims::new(1u32, 32u32), &[ParamValue::Ptr(out)])
        .unwrap();
    let v = gpu.read_u32s(out, 32);
    for (i, &x) in v.iter().enumerate().take(31) {
        assert_eq!(x, i as u32 + 1);
    }
    assert_eq!(v[31], 31, "out-of-range source keeps own value");
}

#[test]
fn shfl_respects_divergence() {
    // Only lanes 0..16 are active; a shfl.down by 16 would source from
    // inactive lanes → lanes keep their own values.
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 out)\n{{\n\
         .reg .pred %p;\n.reg .b32 %r<4>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         setp.ge.s32 %p, %r1, 16;\n\
         @%p bra L_end;\n\
         shfl.down.b32 %r2, %r1, 16, 31;\n\
         mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r2;\n\
         L_end:\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let out = gpu.malloc(32 * 4);
    gpu.launch(&m, "k", GridDims::new(1u32, 32u32), &[ParamValue::Ptr(out)])
        .unwrap();
    let v = gpu.read_u32s(out, 32);
    for (i, &x) in v.iter().enumerate().take(16) {
        assert_eq!(x, i as u32, "inactive source lane → own value");
    }
}
