//! Paper Figure 1: translation of PTX instructions into trace operations.
//!
//! The sample is a warp of two threads executing a load, a divergent
//! branch whose then-path stores, and a fenced `atom.exch` (a block-scope
//! release). The device-side event stream must match Fig. 1(b):
//! per-lane memory operations bracketed by `endi`, explicit
//! `if`/`else`/`fi`, and `relBlk` for the fence + exchange.

use barracuda_repro::instrument::{instrument_module, InstrumentOptions};
use barracuda_repro::simt::{Gpu, GpuConfig, ParamValue, VecSink};
use barracuda_repro::trace::ops::{AccessKind, Event, Scope};
use barracuda_repro::trace::GridDims;

const FIG1: &str = r#"
.version 4.3
.target sm_35
.address_size 64
.visible .entry fig1(.param .u64 a, .param .u64 b, .param .u64 d)
{
    .reg .pred %p;
    .reg .b32 %r<4>;
    .reg .b64 %rd<6>;
    ld.param.u64 %rd1, [a];
    ld.param.u64 %rd2, [b];
    ld.param.u64 %rd3, [d];
    mov.u32 %r0, %tid.x;
    setp.ne.s32 %p, %r0, 0;
    ld.global.u32 %r1, [%rd1];
    @%p bra label1;
    st.global.u32 [%rd2], 1;
    bra.uni label2;
label1:
label2:
    membar.cta;
    atom.global.exch.b32 %r2, [%rd3], 1;
    ret;
}
"#;

#[test]
fn fig1_ptx_translates_to_expected_trace_operations() {
    let module = barracuda_ptx::parse(FIG1).expect("fig1 parses");
    let (instrumented, stats) = instrument_module(&module, &InstrumentOptions::default());
    // The fence + atom.exch is inferred as a block-scope release (§3.1).
    assert_eq!(stats.releases, 1, "membar.cta + atom.exch → relBlk");

    let mut gpu = Gpu::new(GpuConfig::default());
    let a = gpu.malloc(4);
    let b = gpu.malloc(4);
    let d = gpu.malloc(4);
    let sink = VecSink::new();
    let dims = GridDims::with_warp_size(1u32, 2u32, 2);
    gpu.launch_with_sink(
        &instrumented,
        "fig1",
        dims,
        &[ParamValue::Ptr(a), ParamValue::Ptr(b), ParamValue::Ptr(d)],
        &sink,
    )
    .expect("fig1 runs");

    let events: Vec<Event> = sink
        .take()
        .iter()
        .map(barracuda_repro::trace::Record::decode)
        .collect();
    // Expected translation (Fig. 1b): the warp-level read, the branch
    // split, the then-path store (here: lane 0, the fall-through path,
    // since the taken path is empty), reconvergence, and the fenced
    // exchange as a release by both lanes.
    let kinds: Vec<String> = events
        .iter()
        .map(|e| match e {
            Event::Access { kind, mask, .. } => format!("{kind:?}@{mask:b}"),
            Event::If {
                then_mask,
                else_mask,
                ..
            } => format!("if({then_mask:b},{else_mask:b})"),
            Event::Else { .. } => "else".into(),
            Event::Fi { .. } => "fi".into(),
            Event::Bar { .. } => "bar".into(),
            Event::Exit { .. } => "exit".into(),
        })
        .collect();
    assert_eq!(
        kinds,
        vec![
            "Read@11".to_string(),  // rd(t0,a), rd(t1,a), endi(w)
            "if(10,1)".to_string(), // branch: lane 1 taken (empty path), lane 0 falls through
            "else".to_string(),     // empty taken path finishes immediately
            "Write@1".to_string(),  // wr(t0,b), endi(w)
            "fi".to_string(),       // reconvergence
            format!("{:?}@11", AccessKind::Release(Scope::Block)), // relBlk(t0,d), relBlk(t1,d), endi(w)
            "exit".to_string(),
        ],
        "full stream: {events:#?}"
    );
}
