//! Pipeline fuzzing: random, memory-safe PTX kernels run through the full
//! instrument → simulate → detect pipeline.
//!
//! Three properties:
//! 1. the pipeline is total (no crashes, no simulator faults);
//! 2. on the *same* device-side event stream, the compressed detector and
//!    the uncompressed reference detector report identical racing
//!    locations (losslessness over real streams, complementing the
//!    synthetic streams in `crates/core/tests/ptvc_lossless.rs`);
//! 3. race/no-race verdicts are stable across scheduler seeds.

use barracuda_repro::core::{Detector, ReferenceDetector, Worker};
use barracuda_repro::instrument::{instrument_module, InstrumentOptions};
use barracuda_repro::ptx::ast::*;
use barracuda_repro::ptx::KernelBuilder;
use barracuda_repro::simt::{Gpu, GpuConfig, ParamValue, VecSink};
use barracuda_repro::trace::{GridDims, MemSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

const WORDS: i64 = 64; // buffer size in words (power of two)

/// Generates a random, memory-safe kernel: every address is
/// `buf + (value & (WORDS-1)) * 4`, all branches are forward, barriers
/// only appear outside branch regions and before any early return.
fn random_kernel(seed: u64) -> barracuda_ptx::ast::Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KernelBuilder::new("fuzz");
    b.param("buf", Type::U64);
    let lin = b.linear_tid();
    let buf = b.load_param_ptr("buf");
    let pred = b.reg("%p0", RegClass::Pred);
    let idx = b.reg("%idx", RegClass::B32);
    let val = b.reg("%val", RegClass::B32);
    let addr = b.reg("%addr", RegClass::B64);
    let tmp64 = b.reg("%tmp64", RegClass::B64);
    b.push(Op::Mov {
        ty: Type::U32,
        dst: idx,
        src: Operand::Reg(lin),
    });
    b.push(Op::Mov {
        ty: Type::U32,
        dst: val,
        src: Operand::Reg(lin),
    });

    let mut open: Vec<String> = Vec::new();
    let mut barriers_allowed = true;
    let n = rng.random_range(6..30);
    for _ in 0..n {
        // Materialize a bounded address.
        let emit_addr = |b: &mut KernelBuilder, shift: i64| {
            b.push(Op::Bin {
                op: BinOp::And,
                ty: Type::B32,
                dst: idx,
                a: Operand::Reg(idx),
                b: Operand::Imm(WORDS - 1),
            });
            b.push(Op::Mul {
                mode: MulMode::Wide,
                ty: Type::U32,
                dst: tmp64,
                a: Operand::Reg(idx),
                b: Operand::Imm(4),
            });
            b.push(Op::Bin {
                op: BinOp::Add,
                ty: Type::S64,
                dst: addr,
                a: Operand::Reg(buf),
                b: Operand::Reg(tmp64),
            });
            if shift != 0 {
                b.push(Op::Bin {
                    op: BinOp::Add,
                    ty: Type::S64,
                    dst: addr,
                    a: Operand::Reg(addr),
                    b: Operand::Imm(shift),
                });
            }
        };
        match rng.random_range(0..10) {
            0 | 1 => {
                emit_addr(&mut b, 0);
                b.push(Op::Ld {
                    space: Space::Global,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    dst: val,
                    addr: Address::reg(addr),
                });
            }
            2 | 3 => {
                emit_addr(&mut b, 0);
                b.push(Op::St {
                    space: Space::Global,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    addr: Address::reg(addr),
                    src: Operand::Reg(val),
                });
            }
            4 => {
                emit_addr(&mut b, 0);
                b.push(Op::Atom {
                    space: Space::Global,
                    op: [AtomOp::Add, AtomOp::Exch, AtomOp::Max][rng.random_range(0..3)],
                    ty: Type::U32,
                    dst: val,
                    addr: Address::reg(addr),
                    a: Operand::Reg(lin),
                    b: None,
                });
            }
            5 => {
                b.push(Op::Membar {
                    level: [FenceLevel::Cta, FenceLevel::Gl][rng.random_range(0..2)],
                });
            }
            6 if open.is_empty() && barriers_allowed => {
                b.push(Op::Bar { idx: 0 });
            }
            7 => {
                // Forward branch region over some lanes.
                let l = b.fresh_label("skip");
                b.push(Op::Setp {
                    cmp: CmpOp::Lt,
                    ty: Type::U32,
                    dst: pred,
                    a: Operand::Reg(lin),
                    b: Operand::Imm(rng.random_range(0..20)),
                });
                b.push_guarded(
                    pred,
                    rng.random::<bool>(),
                    Op::Bra {
                        uni: false,
                        target: l.clone(),
                    },
                );
                open.push(l);
            }
            8 if !open.is_empty() => {
                b.label(open.pop().expect("non-empty"));
            }
            _ => {
                b.push(Op::Bin {
                    op: [BinOp::Add, BinOp::Xor, BinOp::Shl][rng.random_range(0..3)],
                    ty: Type::B32,
                    dst: idx,
                    a: Operand::Reg(idx),
                    b: Operand::Imm(rng.random_range(1..13)),
                });
            }
        }
        // A guarded early return disables all later barriers.
        if open.is_empty() && rng.random_range(0..20) == 0 {
            b.push(Op::Setp {
                cmp: CmpOp::Eq,
                ty: Type::U32,
                dst: pred,
                a: Operand::Reg(lin),
                b: Operand::Imm(63),
            });
            b.push_guarded(pred, false, Op::Ret);
            barriers_allowed = false;
        }
    }
    for l in open {
        b.label(l);
    }
    b.push(Op::Ret);
    b.build_module()
}

type RaceKey = (u8, u64, u64);

fn race_set(reports: &[barracuda_repro::core::RaceReport]) -> BTreeSet<RaceKey> {
    reports
        .iter()
        .map(|r| {
            (
                match r.space {
                    MemSpace::Global => 0u8,
                    MemSpace::Shared => 1,
                },
                r.block.unwrap_or(0),
                r.addr,
            )
        })
        .collect()
}

/// Runs the instrumented kernel once, returning the compressed and
/// reference race sets over the identical event stream.
fn run_pipeline(seed: u64, sched_seed: u64) -> (BTreeSet<RaceKey>, BTreeSet<RaceKey>) {
    let module = random_kernel(seed);
    let (instrumented, _) = instrument_module(&module, &InstrumentOptions::default());
    let dims = GridDims::with_warp_size(2u32, 8u32, 4);
    let mut gpu = Gpu::new(GpuConfig {
        seed: sched_seed,
        slice: 3,
        ..GpuConfig::default()
    });
    let buf = gpu.malloc(WORDS as u64 * 4 + 8);
    let sink = VecSink::new();
    gpu.launch_with_sink(&instrumented, "fuzz", dims, &[ParamValue::Ptr(buf)], &sink)
        .unwrap_or_else(|e| panic!("seed {seed}: simulation failed: {e}"));
    let records = sink.take();
    let det = Detector::new(dims, 0);
    let mut worker = Worker::new(&det);
    let mut reference = ReferenceDetector::new(dims);
    for r in &records {
        worker.process_record(r);
        reference.process_event(&r.decode());
    }
    (
        race_set(&det.races().reports()),
        race_set(&reference.races().reports()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_is_total_and_compression_lossless(seed in any::<u64>()) {
        let (compressed, reference) = run_pipeline(seed, 1);
        prop_assert_eq!(compressed, reference, "seed {}", seed);
    }

}

/// Verdicts under two very different scheduler seeds, over a fixed corpus.
/// (Dynamic race detection is trace-sensitive — a release/acquire edge may
/// or may not be exercised by a given interleaving — so this is pinned to
/// a verified corpus rather than randomized.)
#[test]
fn verdict_stable_across_scheduler_seeds_fixed_corpus() {
    for seed in 0..40u64 {
        let (a, _) = run_pipeline(seed, 1);
        let (b, _) = run_pipeline(seed, 777);
        assert_eq!(a.is_empty(), b.is_empty(), "seed {seed}: {a:?} vs {b:?}");
    }
}

#[test]
fn pipeline_fuzz_fixed_corpus() {
    for seed in 0..30 {
        let (compressed, reference) = run_pipeline(seed, 2);
        assert_eq!(compressed, reference, "seed {seed}");
    }
}
