//! Cross-crate end-to-end properties: verdict stability across scheduler
//! seeds, agreement between synchronous and threaded detection, and
//! robustness of verdicts under the weak memory models.

use barracuda_repro::barracuda::{
    Barracuda, BarracudaConfig, DetectionMode, GpuConfig, KernelRun, MemoryModel,
};
use barracuda_repro::simt::ParamValue;
use barracuda_repro::suite::{
    all_programs, program, run_program, ArgSpec, SuiteProgram, Verdict, KERNEL,
};

fn run_with_config(p: &SuiteProgram, config: BarracudaConfig) -> Verdict {
    let mut bar = Barracuda::with_config(config);
    let mut params = Vec::new();
    for a in &p.args {
        match a {
            ArgSpec::Buf(bytes) => params.push(ParamValue::Ptr(bar.gpu_mut().malloc(*bytes))),
            ArgSpec::U32(v) => params.push(ParamValue::U32(*v)),
        }
    }
    match bar.check(&KernelRun {
        source: &p.source,
        kernel: KERNEL,
        dims: p.dims,
        params: &params,
    }) {
        Ok(a) if !a.diagnostics().is_empty() => Verdict::BarrierDivergence,
        Ok(a) if a.race_count() > 0 => Verdict::Race,
        Ok(_) => Verdict::NoRace,
        Err(barracuda_repro::barracuda::Error::Sim(
            barracuda_repro::simt::SimError::BarrierDivergence { .. },
        )) => Verdict::BarrierDivergence,
        Err(e) => Verdict::Error(e.to_string()),
    }
}

/// Representative programs spanning the feature space.
const REPRESENTATIVES: [&str; 8] = [
    "global_ww_interblock_race",
    "global_flag_gl_fences_norace",
    "shared_staged_read_barrier_norace",
    "branch_ordering_race",
    "spinlock_gl_fences_norace",
    "spinlock_unfenced_cas_race",
    "threadfence_reduction_norace",
    "reduction_barriers_norace",
];

#[test]
fn verdicts_stable_across_scheduler_seeds() {
    for name in REPRESENTATIVES {
        let p = program(name).expect("known program");
        let base = run_program(&p);
        for seed in [1u64, 99, 4242] {
            let cfg = BarracudaConfig {
                gpu: GpuConfig {
                    seed,
                    slice: 4,
                    ..GpuConfig::default()
                },
                ..BarracudaConfig::default()
            };
            let v = run_with_config(&p, cfg);
            assert_eq!(v, base, "{name} diverged at seed {seed}");
        }
    }
}

#[test]
fn threaded_mode_agrees_with_synchronous_on_block_local_programs() {
    // Programs whose synchronization is intra-block (or absent) cannot be
    // affected by cross-queue processing order; both modes must agree.
    for name in [
        "global_ww_interblock_race",
        "shared_staged_read_barrier_norace",
        "branch_ordering_race",
        "reduction_barriers_norace",
        "shared_pingpong_two_barriers_norace",
        "global_disjoint_norace",
    ] {
        let p = program(name).expect("known program");
        let sync = run_with_config(&p, BarracudaConfig::default());
        let threaded = run_with_config(
            &p,
            BarracudaConfig {
                mode: DetectionMode::Threaded,
                ..BarracudaConfig::default()
            },
        );
        assert_eq!(sync, threaded, "{name}");
    }
}

#[test]
fn weak_memory_models_preserve_verdicts() {
    // Happens-before verdicts depend on synchronization, not on which
    // store drains first; the Kepler preset must not change them.
    for name in REPRESENTATIVES {
        let p = program(name).expect("known program");
        let base = run_program(&p);
        let cfg = BarracudaConfig {
            gpu: GpuConfig {
                memory_model: MemoryModel::KeplerK520,
                ..GpuConfig::default()
            },
            ..BarracudaConfig::default()
        };
        let weak = run_with_config(&p, cfg);
        assert_eq!(weak, base, "{name} under KeplerK520");
    }
}

#[test]
fn race_counts_are_deterministic_for_fixed_seed() {
    let p = program("reduction_missing_initial_barrier_race").expect("known program");
    let count = |seed: u64| {
        let mut bar = Barracuda::with_config(BarracudaConfig {
            gpu: GpuConfig {
                seed,
                ..GpuConfig::default()
            },
            ..BarracudaConfig::default()
        });
        let params: Vec<ParamValue> = p
            .args
            .iter()
            .map(|a| match a {
                ArgSpec::Buf(b) => ParamValue::Ptr(bar.gpu_mut().malloc(*b)),
                ArgSpec::U32(v) => ParamValue::U32(*v),
            })
            .collect();
        bar.check(&KernelRun {
            source: &p.source,
            kernel: KERNEL,
            dims: p.dims,
            params: &params,
        })
        .expect("runs")
        .race_count()
    };
    assert_eq!(count(5), count(5));
}

#[test]
fn every_suite_program_has_plausible_structure() {
    // Sanity over the whole corpus: sources parse, dims are small enough
    // for CI, and racy programs declare at least one buffer or shared use.
    for p in all_programs() {
        assert!(
            p.dims.total_threads() <= 256,
            "{} too large for the suite",
            p.name
        );
        let m = barracuda_ptx::parse(&p.source).expect("parses");
        assert_eq!(m.kernels.len(), 1);
        assert!(m.kernels[0].static_instruction_count() >= 2, "{}", p.name);
    }
}

#[test]
fn warp_size_sweep_finds_latent_races() {
    // The §3.1 future-work extension: warp-synchronous code that is safe
    // at the hardware warp size races at smaller simulated warp sizes.
    let p = program("warp_synchronous_shuffle_norace").expect("known program");
    let mut bar = Barracuda::new();
    let params: Vec<ParamValue> = p
        .args
        .iter()
        .map(|a| match a {
            ArgSpec::Buf(b) => ParamValue::Ptr(bar.gpu_mut().malloc(*b)),
            ArgSpec::U32(v) => ParamValue::U32(*v),
        })
        .collect();
    let run = KernelRun {
        source: &p.source,
        kernel: KERNEL,
        dims: p.dims,
        params: &params,
    };
    let results = bar.check_warp_sizes(&run, &[32, 8]).expect("sweep runs");
    assert_eq!(results[0].1.race_count(), 0, "safe at warp size 32");
    assert!(results[1].1.race_count() > 0, "latent race at warp size 8");
}
