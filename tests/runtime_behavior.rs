//! Runtime-level behaviours: queue back-pressure, multi-kernel sessions,
//! and the paper's PTVC format-distribution claim.

use barracuda_repro::barracuda::{Barracuda, BarracudaConfig, DetectionMode, KernelRun};
use barracuda_repro::simt::ParamValue;
use barracuda_repro::suite::{program, ArgSpec, KERNEL};
use barracuda_repro::trace::GridDims;
use barracuda_repro::workloads::{workload, Scale};

#[test]
fn tiny_queues_back_pressure_but_stay_correct() {
    // Capacity-8 queues force the device-side logger to block on the
    // host consumers constantly (§4.2: the logger "waits for the CPU to
    // drain queue entries if necessary"); verdicts must be unaffected.
    let w = workload("pathfinder").expect("known workload");
    let inst = w.generate(&Scale::quick());
    let mut bar = Barracuda::with_config(BarracudaConfig {
        mode: DetectionMode::Threaded,
        queue_capacity: 8,
        ..BarracudaConfig::default()
    });
    let params = inst.alloc_params(bar.gpu_mut());
    let analysis = bar
        .check_module(&inst.module, &inst.kernel, inst.dims, &params)
        .expect("runs under back-pressure");
    assert_eq!(analysis.race_count() as u32, inst.expected_races());
}

#[test]
fn multiple_kernels_share_one_session() {
    // Device memory persists across launches within a session; each
    // launch gets its own detector (races are intra-kernel, §1).
    let fill = r#"
.version 4.3
.target sm_35
.address_size 64
.visible .entry fill(.param .u64 buf)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.s64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    ret;
}
"#;
    let sum = r#"
.version 4.3
.target sm_35
.address_size 64
.visible .entry sum(.param .u64 buf, .param .u64 out)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 4;
    add.s64 %rd3, %rd1, %rd3;
    ld.global.u32 %r2, [%rd3];
    atom.global.add.u32 %r3, [%rd2], %r2;
    ret;
}
"#;
    let mut bar = Barracuda::new();
    let buf = bar.gpu_mut().malloc(32 * 4);
    let out = bar.gpu_mut().malloc(4);
    let dims = GridDims::new(1u32, 32u32);
    let a1 = bar
        .check(&KernelRun {
            source: fill,
            kernel: "fill",
            dims,
            params: &[ParamValue::Ptr(buf)],
        })
        .unwrap();
    assert!(a1.is_clean());
    let a2 = bar
        .check(&KernelRun {
            source: sum,
            kernel: "sum",
            dims,
            params: &[ParamValue::Ptr(buf), ParamValue::Ptr(out)],
        })
        .unwrap();
    assert!(a2.is_clean());
    assert_eq!(bar.gpu().read_u32(out), (0..32).sum::<u32>());
}

#[test]
fn ptvc_formats_are_mostly_cheap() {
    // §4.3.1: "roughly 90% of the time PTVCs have the same value for all
    // threads external to a warp and either 1) the same value for all
    // threads in a warp or 2) two distinct values" — i.e. the CONVERGED
    // and DIVERGED formats dominate. Aggregate the format census over a
    // representative batch of suite programs.
    let mut census = [0u64; 4];
    for name in [
        "global_disjoint_norace",
        "shared_staged_read_barrier_norace",
        "branch_disjoint_paths_norace",
        "reduction_barriers_norace",
        "barrier_full_block_norace",
        "warp_synchronous_shuffle_norace",
        "branch_after_fi_norace",
    ] {
        let p = program(name).expect("known program");
        let mut bar = Barracuda::new();
        let params: Vec<ParamValue> = p
            .args
            .iter()
            .map(|a| match a {
                ArgSpec::Buf(b) => ParamValue::Ptr(bar.gpu_mut().malloc(*b)),
                ArgSpec::U32(v) => ParamValue::U32(*v),
            })
            .collect();
        let analysis = bar
            .check(&KernelRun {
                source: &p.source,
                kernel: KERNEL,
                dims: p.dims,
                params: &params,
            })
            .unwrap();
        for (acc, c) in census.iter_mut().zip(analysis.stats().format_census) {
            *acc += c;
        }
    }
    let total: u64 = census.iter().sum();
    let cheap = census[0] + census[1]; // converged + diverged
    assert!(total > 0);
    let frac = cheap as f64 / total as f64;
    assert!(
        frac >= 0.85,
        "cheap PTVC formats should dominate (paper: ~90%), got {:.1}% {census:?}",
        frac * 100.0
    );
}
