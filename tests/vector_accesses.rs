//! Vector loads/stores (`ld.v2`/`st.v4`): parsing, execution, logging and
//! race detection at byte granularity.

use barracuda_repro::barracuda::{Barracuda, KernelRun};
use barracuda_repro::simt::{Gpu, GpuConfig, ParamValue};
use barracuda_repro::trace::GridDims;

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

#[test]
fn vector_ops_parse_and_round_trip() {
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [p];\n\
         ld.global.v2.u32 {{%r1, %r2}}, [%rd1];\n\
         ld.global.v4.u32 {{%r3, %r4, %r5, %r6}}, [%rd1+16];\n\
         st.global.v2.u32 [%rd1+32], {{%r1, %r2}};\n\
         st.global.v4.u32 [%rd1+48], {{%r3, %r4, %r5, %r6}};\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let text = barracuda_ptx::printer::print_module(&m);
    let m2 = barracuda_ptx::parse(&text).expect("round trip");
    assert_eq!(m.kernels[0].stmts, m2.kernels[0].stmts);
}

#[test]
fn vector_load_store_executes_correctly() {
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [p];\n\
         ld.global.v4.u32 {{%r1, %r2, %r3, %r4}}, [%rd1];\n\
         st.global.v4.u32 [%rd1+16], {{%r4, %r3, %r2, %r1}};\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let p = gpu.malloc(32);
    gpu.write_u32s(p, &[10, 20, 30, 40]);
    gpu.launch(&m, "k", GridDims::new(1u32, 1u32), &[ParamValue::Ptr(p)])
        .unwrap();
    assert_eq!(gpu.read_u32s(p.offset(16), 4), vec![40, 30, 20, 10]);
}

#[test]
fn vector_store_races_with_overlapping_scalar_write() {
    // Block 0 stores a v4 (16 bytes); block 1 stores one u32 into the
    // middle of that range.
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .pred %pp;\n.reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [p];\n\
         mov.u32 %r1, %ctaid.x;\n\
         setp.eq.s32 %pp, %r1, 0;\n\
         @!%pp bra L_b;\n\
         st.global.v4.u32 [%rd1], {{%r1, %r1, %r1, %r1}};\n\
         bra.uni L_end;\n\
         L_b:\n\
         st.global.u32 [%rd1+8], 7;\n\
         L_end:\n\
         ret;\n}}"
    );
    let mut bar = Barracuda::new();
    let p = bar.gpu_mut().malloc(16);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "k",
            dims: GridDims::new(2u32, 1u32),
            params: &[ParamValue::Ptr(p)],
        })
        .unwrap();
    assert_eq!(a.race_count(), 1, "{:?}", a.races());
}

#[test]
fn disjoint_vector_stores_are_clean() {
    // Each thread v2-stores into its own 8-byte slot.
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [p];\n\
         mov.u32 %r1, %tid.x;\n\
         mul.wide.u32 %rd2, %r1, 8;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.v2.u32 [%rd3], {{%r1, %r1}};\n\
         ld.global.v2.u32 {{%r2, %r3}}, [%rd3];\n\
         ret;\n}}"
    );
    let mut bar = Barracuda::new();
    let p = bar.gpu_mut().malloc(32 * 8);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "k",
            dims: GridDims::new(1u32, 32u32),
            params: &[ParamValue::Ptr(p)],
        })
        .unwrap();
    assert!(a.is_clean(), "{:?}", a.races());
    // The store was logged; the same-address load after it was pruned as
    // redundant (write covers read).
    assert!(a.stats().instrument.log_calls >= 1);
    assert_eq!(a.stats().instrument.pruned, 1);
}

#[test]
fn vector_load_with_fence_is_an_acquire() {
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 p)\n{{\n\
         .reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [p];\n\
         ld.global.v2.u32 {{%r1, %r2}}, [%rd1];\n\
         membar.gl;\n\
         ret;\n}}"
    );
    let m = barracuda_ptx::parse(&src).unwrap();
    let (_, stats) = barracuda_repro::instrument::instrument_module(
        &m,
        &barracuda_repro::instrument::InstrumentOptions::default(),
    );
    assert_eq!(stats.acquires, 1);
}
