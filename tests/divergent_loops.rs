//! Divergent loops: lanes with different trip counts progressively leave
//! the loop, exercising deep SIMT-stack nesting and the matching detector
//! stack. The paper treats loops as implicitly unrolled (§3.1); each
//! divergent iteration still produces balanced if/else/fi events.

use barracuda_repro::barracuda::{Barracuda, KernelRun};
use barracuda_repro::simt::{Gpu, GpuConfig, ParamValue};
use barracuda_repro::trace::GridDims;

const HEADER: &str = ".version 4.3\n.target sm_35\n.address_size 64\n";

/// Each lane iterates `tid+1` times, accumulating; lanes exit the loop at
/// different iterations.
fn variable_trip_src() -> String {
    format!(
        "{HEADER}.visible .entry k(.param .u64 out)\n{{\n\
         .reg .pred %p;\n.reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         add.s32 %r2, %r1, 1;\n\
         mov.u32 %r3, 0;\n\
         mov.u32 %r4, 0;\n\
         L_loop:\n\
         add.s32 %r3, %r3, %r2;\n\
         add.s32 %r4, %r4, 1;\n\
         setp.lt.u32 %p, %r4, %r2;\n\
         @%p bra L_loop;\n\
         mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r3;\n\
         ret;\n}}"
    )
}

#[test]
fn variable_trip_counts_compute_correctly() {
    let m = barracuda_ptx::parse(&variable_trip_src()).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let out = gpu.malloc(32 * 4);
    gpu.launch(&m, "k", GridDims::new(1u32, 32u32), &[ParamValue::Ptr(out)])
        .unwrap();
    let v = gpu.read_u32s(out, 32);
    for (i, &x) in v.iter().enumerate() {
        let n = i as u32 + 1;
        assert_eq!(x, n * n, "lane {i}: (tid+1) added tid+1 times");
    }
}

#[test]
fn divergent_loop_is_race_free_under_detection() {
    let src = variable_trip_src();
    let mut bar = Barracuda::new();
    let out = bar.gpu_mut().malloc(32 * 4);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "k",
            dims: GridDims::new(1u32, 32u32),
            params: &[ParamValue::Ptr(out)],
        })
        .unwrap();
    assert!(a.is_clean(), "{:?}", a.races());
    // 32 distinct trip counts → many nested branch rounds were processed.
    assert!(a.stats().events > 32);
}

#[test]
fn divergent_loop_writes_same_location_race() {
    // Every iteration of every lane writes buf[0]: lanes of one warp in
    // the same iteration conflict (intra-warp), and lanes that left the
    // loop are concurrent with those still in it (divergence).
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 out)\n{{\n\
         .reg .pred %p;\n.reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         add.s32 %r2, %r1, 1;\n\
         mov.u32 %r4, 0;\n\
         L_loop:\n\
         st.global.u32 [%rd1], %r1;\n\
         add.s32 %r4, %r4, 1;\n\
         setp.lt.u32 %p, %r4, %r2;\n\
         @%p bra L_loop;\n\
         ret;\n}}"
    );
    let mut bar = Barracuda::new();
    let out = bar.gpu_mut().malloc(4);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "k",
            dims: GridDims::new(1u32, 4u32),
            params: &[ParamValue::Ptr(out)],
        })
        .unwrap();
    assert_eq!(a.race_count(), 1);
}

#[test]
fn nested_divergent_loops_terminate_and_stay_balanced() {
    // Inner loop trip count depends on the outer counter and the lane —
    // doubly-divergent nesting.
    let src = format!(
        "{HEADER}.visible .entry k(.param .u64 out)\n{{\n\
         .reg .pred %p<3>;\n.reg .b32 %r<8>;\n.reg .b64 %rd<4>;\n\
         ld.param.u64 %rd1, [out];\n\
         mov.u32 %r1, %tid.x;\n\
         mov.u32 %r2, 0;\n\
         mov.u32 %r5, 0;\n\
         L_outer:\n\
         mov.u32 %r3, 0;\n\
         L_inner:\n\
         add.s32 %r5, %r5, 1;\n\
         add.s32 %r3, %r3, 1;\n\
         and.b32 %r4, %r1, 3;\n\
         setp.le.u32 %p1, %r3, %r4;\n\
         @%p1 bra L_inner;\n\
         add.s32 %r2, %r2, 1;\n\
         setp.lt.u32 %p2, %r2, 3;\n\
         @%p2 bra L_outer;\n\
         mul.wide.u32 %rd2, %r1, 4;\n\
         add.s64 %rd3, %rd1, %rd2;\n\
         st.global.u32 [%rd3], %r5;\n\
         ret;\n}}"
    );
    let mut bar = Barracuda::new();
    let out = bar.gpu_mut().malloc(32 * 4);
    let a = bar
        .check(&KernelRun {
            source: &src,
            kernel: "k",
            dims: GridDims::new(1u32, 32u32),
            params: &[ParamValue::Ptr(out)],
        })
        .unwrap();
    assert!(a.is_clean(), "{:?}", a.races());
    // Lane writes 3 * ((tid & 3) + 1) total inner iterations.
    let v = bar.gpu().read_u32s(out, 32);
    for (i, &x) in v.iter().enumerate() {
        assert_eq!(x, 3 * ((i as u32 & 3) + 1), "lane {i}");
    }
}
