//! Differential testing of the two interpreters: the decoded micro-op hot
//! loop (`ExecMode::Decoded`, the default) against the AST-walking
//! reference interpreter (`ExecMode::AstWalk`, the seed semantics).
//!
//! For random instrumented kernels executed under identical scheduler
//! seeds and memory presets, both modes must produce:
//!
//! * identical [`LaunchStats`] (instruction/barrier counts — equality also
//!   pins the RNG draw sequence, so the weak-memory drains align),
//! * identical final global-memory contents, and
//! * a byte-identical device-side event stream.

use barracuda_repro::instrument::{instrument_module, InstrumentOptions};
use barracuda_repro::ptx::ast::*;
use barracuda_repro::ptx::KernelBuilder;
use barracuda_repro::simt::{
    ExecMode, Gpu, GpuConfig, LaunchStats, MemoryModel, ParamValue, VecSink,
};
use barracuda_repro::trace::GridDims;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const WORDS: i64 = 64; // global buffer size in words (power of two)
const SM_WORDS: i64 = 32; // shared buffer size in words (power of two)

/// Generates a random, memory-safe kernel covering the decoded
/// instruction set: bounded global and shared accesses, atomics, fences,
/// forward divergent branches, shuffles, selp, vector ops and barriers
/// (same discipline as `pipeline_fuzz.rs`: barriers only outside branch
/// regions and before any early return).
fn random_kernel(seed: u64) -> barracuda_ptx::ast::Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KernelBuilder::new("diff");
    b.param("buf", Type::U64);
    let sm = b.shared("sm", SM_WORDS as u64 * 4, 4);
    let lin = b.linear_tid();
    let buf = b.load_param_ptr("buf");
    let pred = b.reg("%p0", RegClass::Pred);
    let idx = b.reg("%idx", RegClass::B32);
    let val = b.reg("%val", RegClass::B32);
    let val2 = b.reg("%val2", RegClass::B32);
    let addr = b.reg("%addr", RegClass::B64);
    let smbase = b.reg("%smb", RegClass::B64);
    let tmp64 = b.reg("%tmp64", RegClass::B64);
    b.push(Op::Mov {
        ty: Type::U32,
        dst: idx,
        src: Operand::Reg(lin),
    });
    b.push(Op::Mov {
        ty: Type::U32,
        dst: val,
        src: Operand::Reg(lin),
    });
    // Shared-symbol operand: exercises decode-time symbol resolution.
    b.push(Op::Mov {
        ty: Type::U64,
        dst: smbase,
        src: Operand::Sym(sm.clone()),
    });

    // Materializes `addr = base + (idx & (words-1)) * 4`.
    let emit_addr = |b: &mut KernelBuilder, base: Reg, words: i64| {
        b.push(Op::Bin {
            op: BinOp::And,
            ty: Type::B32,
            dst: idx,
            a: Operand::Reg(idx),
            b: Operand::Imm(words - 1),
        });
        b.push(Op::Mul {
            mode: MulMode::Wide,
            ty: Type::U32,
            dst: tmp64,
            a: Operand::Reg(idx),
            b: Operand::Imm(4),
        });
        b.push(Op::Bin {
            op: BinOp::Add,
            ty: Type::S64,
            dst: addr,
            a: Operand::Reg(base),
            b: Operand::Reg(tmp64),
        });
    };

    let mut open: Vec<String> = Vec::new();
    let mut barriers_allowed = true;
    let n = rng.random_range(8..32);
    for _ in 0..n {
        match rng.random_range(0..14) {
            0 | 1 => {
                emit_addr(&mut b, buf, WORDS);
                b.push(Op::Ld {
                    space: Space::Global,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    dst: val,
                    addr: Address::reg(addr),
                });
            }
            2 | 3 => {
                emit_addr(&mut b, buf, WORDS);
                b.push(Op::St {
                    space: Space::Global,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    addr: Address::reg(addr),
                    src: Operand::Reg(val),
                });
            }
            4 => {
                emit_addr(&mut b, buf, WORDS);
                b.push(Op::Atom {
                    space: Space::Global,
                    op: [AtomOp::Add, AtomOp::Exch, AtomOp::Max][rng.random_range(0..3)],
                    ty: Type::U32,
                    dst: val,
                    addr: Address::reg(addr),
                    a: Operand::Reg(lin),
                    b: None,
                });
            }
            5 => {
                emit_addr(&mut b, smbase, SM_WORDS);
                b.push(Op::St {
                    space: Space::Shared,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    addr: Address::reg(addr),
                    src: Operand::Reg(val),
                });
            }
            6 => {
                emit_addr(&mut b, smbase, SM_WORDS);
                b.push(Op::Ld {
                    space: Space::Shared,
                    cache: None,
                    volatile: false,
                    ty: Type::U32,
                    dst: val2,
                    addr: Address::reg(addr),
                });
                b.push(Op::Bin {
                    op: BinOp::Add,
                    ty: Type::B32,
                    dst: val,
                    a: Operand::Reg(val),
                    b: Operand::Reg(val2),
                });
            }
            7 => {
                b.push(Op::Membar {
                    level: [FenceLevel::Cta, FenceLevel::Gl][rng.random_range(0..2)],
                });
            }
            8 if open.is_empty() && barriers_allowed => {
                b.push(Op::Bar { idx: 0 });
            }
            9 => {
                // Forward branch region over some lanes.
                let l = b.fresh_label("skip");
                b.push(Op::Setp {
                    cmp: CmpOp::Lt,
                    ty: Type::U32,
                    dst: pred,
                    a: Operand::Reg(lin),
                    b: Operand::Imm(rng.random_range(0..20)),
                });
                b.push_guarded(
                    pred,
                    rng.random::<bool>(),
                    Op::Bra {
                        uni: false,
                        target: l.clone(),
                    },
                );
                open.push(l);
            }
            10 if !open.is_empty() => {
                b.label(open.pop().expect("non-empty"));
            }
            11 => {
                b.push(Op::Shfl {
                    mode: [ShflMode::Up, ShflMode::Down, ShflMode::Bfly, ShflMode::Idx]
                        [rng.random_range(0..4)],
                    ty: Type::B32,
                    dst: val,
                    a: Operand::Reg(val),
                    b: Operand::Imm(rng.random_range(0..4)),
                    c: Operand::Imm(31),
                });
            }
            12 => {
                b.push(Op::Setp {
                    cmp: CmpOp::Gt,
                    ty: Type::U32,
                    dst: pred,
                    a: Operand::Reg(val),
                    b: Operand::Imm(7),
                });
                b.push(Op::Selp {
                    ty: Type::B32,
                    dst: val,
                    a: Operand::Reg(val),
                    b: Operand::Reg(idx),
                    p: pred,
                });
            }
            _ => {
                b.push(Op::Bin {
                    op: [BinOp::Add, BinOp::Xor, BinOp::Shl][rng.random_range(0..3)],
                    ty: Type::B32,
                    dst: idx,
                    a: Operand::Reg(idx),
                    b: Operand::Imm(rng.random_range(1..13)),
                });
            }
        }
        // A guarded early return disables all later barriers.
        if open.is_empty() && rng.random_range(0..20) == 0 {
            b.push(Op::Setp {
                cmp: CmpOp::Eq,
                ty: Type::U32,
                dst: pred,
                a: Operand::Reg(lin),
                b: Operand::Imm(63),
            });
            b.push_guarded(pred, false, Op::Ret);
            barriers_allowed = false;
        }
    }
    for l in open {
        b.label(l);
    }
    b.push(Op::Ret);
    b.build_module()
}

/// A comparable projection of one log record (Record itself is a raw
/// fixed-size struct without PartialEq).
type RecordKey = (u64, u8, u8, u8, u32, [u64; 32]);

/// Runs the instrumented kernel in one mode, returning (stats, final
/// global memory, event stream).
fn run_mode(
    module: &barracuda_ptx::ast::Module,
    mode: ExecMode,
    model: MemoryModel,
    sched_seed: u64,
) -> (LaunchStats, Vec<u8>, Vec<RecordKey>) {
    let (instrumented, _) = instrument_module(module, &InstrumentOptions::default());
    let dims = GridDims::with_warp_size(2u32, 8u32, 4);
    let mut gpu = Gpu::new(GpuConfig {
        seed: sched_seed,
        slice: 3,
        memory_model: model,
        exec_mode: mode,
        ..GpuConfig::default()
    });
    let size = WORDS as u64 * 4 + 8;
    let buf = gpu.malloc(size);
    let sink = VecSink::new();
    let stats = gpu
        .launch_with_sink(&instrumented, "diff", dims, &[ParamValue::Ptr(buf)], &sink)
        .unwrap_or_else(|e| panic!("mode {mode:?}: simulation failed: {e}"));
    let mut mem = vec![0u8; size as usize];
    gpu.read_bytes(buf, &mut mem);
    let records = sink
        .take()
        .iter()
        .map(|r| (r.warp, r.kind, r.space, r.size, r.mask, r.addrs))
        .collect();
    (stats, mem, records)
}

fn assert_modes_agree(seed: u64, model: MemoryModel, sched_seed: u64) {
    let module = random_kernel(seed);
    let (stats_d, mem_d, ev_d) = run_mode(&module, ExecMode::Decoded, model, sched_seed);
    let (stats_a, mem_a, ev_a) = run_mode(&module, ExecMode::AstWalk, model, sched_seed);
    assert_eq!(stats_d, stats_a, "seed {seed}: stats diverge");
    assert_eq!(mem_d, mem_a, "seed {seed}: memory diverges");
    assert_eq!(ev_d.len(), ev_a.len(), "seed {seed}: event count diverges");
    for (i, (d, a)) in ev_d.iter().zip(ev_a.iter()).enumerate() {
        assert_eq!(d, a, "seed {seed}: event {i} diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn decoded_matches_ast_walk_sc(seed in any::<u64>()) {
        assert_modes_agree(seed, MemoryModel::SequentiallyConsistent, 1);
    }

    #[test]
    fn decoded_matches_ast_walk_weak_memory(seed in any::<u64>()) {
        // Buffered model: agreement also proves the RNG consumption of
        // both interpreters is step-for-step identical, since every drain
        // decision draws from the shared scheduler RNG.
        assert_modes_agree(seed, MemoryModel::KeplerK520, 7);
    }
}

#[test]
fn decoded_matches_ast_walk_fixed_corpus() {
    for seed in 0..30u64 {
        assert_modes_agree(seed, MemoryModel::SequentiallyConsistent, 2);
        assert_modes_agree(seed, MemoryModel::MaxwellTitanX, 3);
    }
}

#[test]
fn decoded_matches_ast_walk_native_logging() {
    // Native access logging (no instrumentation pass): the interpreter
    // itself emits the events, including same-value write filtering.
    for seed in 0..10u64 {
        let module = random_kernel(seed);
        let run = |mode: ExecMode| {
            let dims = GridDims::with_warp_size(2u32, 8u32, 4);
            let mut gpu = Gpu::new(GpuConfig {
                seed: 5,
                slice: 3,
                exec_mode: mode,
                native_access_logging: true,
                ..GpuConfig::default()
            });
            let size = WORDS as u64 * 4 + 8;
            let buf = gpu.malloc(size);
            let sink = VecSink::new();
            let stats = gpu
                .launch_with_sink(&module, "diff", dims, &[ParamValue::Ptr(buf)], &sink)
                .unwrap_or_else(|e| panic!("mode {mode:?}: simulation failed: {e}"));
            let mut mem = vec![0u8; size as usize];
            gpu.read_bytes(buf, &mut mem);
            let recs: Vec<RecordKey> = sink
                .take()
                .iter()
                .map(|r| (r.warp, r.kind, r.space, r.size, r.mask, r.addrs))
                .collect();
            (stats, mem, recs)
        };
        assert_eq!(
            run(ExecMode::Decoded),
            run(ExecMode::AstWalk),
            "seed {seed}"
        );
    }
}

#[test]
fn malformed_kernels_fail_identically_at_load() {
    // Load-time validation is shared by both modes: a kernel with an
    // unknown call target never reaches either interpreter.
    let mut b = KernelBuilder::new("bad");
    b.push(Op::Call {
        target: "mystery".into(),
        args: vec![],
    });
    b.push(Op::Ret);
    let module = b.build_module();
    for mode in [ExecMode::Decoded, ExecMode::AstWalk] {
        let mut gpu = Gpu::new(GpuConfig {
            exec_mode: mode,
            ..GpuConfig::default()
        });
        let err = gpu
            .launch(&module, "bad", GridDims::new(1u32, 4u32), &[])
            .unwrap_err();
        assert!(
            matches!(err, barracuda_repro::simt::SimError::BadInstruction { .. }),
            "{mode:?}: {err:?}"
        );
    }
}
